package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// tracePt is one observed dispatch at a node: the instant and the opaque
// payload. Per-node traces are the determinism oracle — they must be
// identical at every shard count and partition.
type tracePt struct {
	at  Time
	arg uint64
}

// pingPort delivers to a peer node either locally (same shard) or through
// a cross-shard stream.
type pingPort struct {
	local  *Kernel
	stream *Stream
	lat    Duration
	dst    *pingNode
}

func (p *pingPort) send(at Time, arg uint64) {
	if p.stream != nil {
		p.stream.Send(at, p.dst, arg)
		return
	}
	p.local.AtH(at, p.dst, arg)
}

// pingNode forwards tokens around a ring, recording every arrival. arg
// encodes token<<16 | hop.
type pingNode struct {
	k     *Kernel
	out   pingPort
	trace []tracePt
	limit uint64
}

func (n *pingNode) Handle(arg uint64) {
	n.trace = append(n.trace, tracePt{n.k.Now(), arg})
	hop := arg & 0xFFFF
	if hop >= n.limit {
		return
	}
	n.out.send(n.k.Now().Add(n.out.lat), (arg&^0xFFFF)|(hop+1))
}

// buildRing wires nodes in a ring with distinct per-edge latencies,
// partitioned round-robin across shards. With one shard everything is
// local; otherwise every shard-crossing edge becomes a stream.
func buildRing(nodes, shards int, hops uint64) (*ShardedKernel, []*pingNode) {
	sk := NewShardedKernel(shards)
	ns := make([]*pingNode, nodes)
	// Up to three tokens circulate; each leaves ~hops/nodes arrivals at
	// every node. Pre-sizing the traces keeps append growth out of the
	// steady-state alloc picture the ring benchmark asserts on.
	traceCap := 3 * (int(hops)/nodes + 2)
	for i := range ns {
		ns[i] = &pingNode{k: sk.Shard(i % shards), limit: hops,
			trace: make([]tracePt, 0, traceCap)}
	}
	edgeLat := func(i int) Duration { return Duration(100 + 13*i) }
	pairEdges := make(map[[2]int]int)
	for i := range ns {
		src, dst := i%shards, (i+1)%nodes%shards
		if src != dst {
			sk.Connect(src, dst, edgeLat(i))
			pairEdges[[2]int{src, dst}]++
		}
	}
	// Streams wired in node order — the same order at every shard count,
	// which is what makes same-instant cross-shard ties partition-stable.
	// Each pair's shared inbox ring is hinted from its edge fan-in.
	for i := range ns {
		next := ns[(i+1)%nodes]
		p := pingPort{lat: edgeLat(i), dst: next}
		if src, dst := i%shards, (i+1)%nodes%shards; src != dst {
			p.stream = sk.NewStreamCap(src, dst, 16*pairEdges[[2]int{src, dst}])
		} else {
			p.local = next.k
		}
		ns[i].out = p
	}
	return sk, ns
}

// ringBufCaps snapshots every inbox ring's and drain scratch's capacity —
// the steady-state invariant the ring benchmark asserts: a fan-out-hinted
// topology never grows either after wiring.
func ringBufCaps(sk *ShardedKernel) []int {
	var caps []int
	for _, st := range sk.shards {
		caps = append(caps, cap(st.staged))
		for _, r := range st.in {
			if r != nil {
				caps = append(caps, len(r.buf))
			}
		}
	}
	return caps
}

func ringTraces(t *testing.T, shards int, hops uint64) [][]tracePt {
	t.Helper()
	const nodes = 6
	sk, ns := buildRing(nodes, shards, hops)
	// Three tokens injected at distinct nodes and instants.
	for tok, start := range []int{0, 2, 5} {
		n := ns[start]
		n.k.AtH(Time(10*(tok+1)), n, uint64(tok+1)<<16)
	}
	sk.Run()
	out := make([][]tracePt, nodes)
	for i, n := range ns {
		out[i] = n.trace
	}
	return out
}

// TestShardedDeterminism: a ring of nodes produces identical per-node
// event traces at every shard count, including the degenerate 1-shard
// (pure sequential) case.
func TestShardedDeterminism(t *testing.T) {
	want := ringTraces(t, 1, 400)
	for _, shards := range []int{2, 3, 6} {
		got := ringTraces(t, shards, 400)
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("shards=%d node %d: %d events, want %d", shards, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("shards=%d node %d event %d: %+v, want %+v", shards, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestShardedProcessedAndNow: bookkeeping sums across shards.
func TestShardedProcessedAndNow(t *testing.T) {
	sk, _ := buildRing(4, 2, 50)
	n0 := sk.Shard(0)
	n0.AtH(5, &countHandler{}, 0)
	sk.Run()
	if sk.Processed() == 0 {
		t.Fatal("Processed() == 0 after a run")
	}
	if sk.Now() == 0 {
		t.Fatal("Now() == 0 after a run")
	}
}

type countHandler struct{ n int }

func (c *countHandler) Handle(uint64) { c.n++ }

// TestShardedSameInstantOrdering: cross-shard messages landing at one
// instant dispatch in (stream id, seq) order — stream ids follow wiring
// order, seq follows send order — regardless of the order the sends were
// issued in.
func TestShardedSameInstantOrdering(t *testing.T) {
	sk := NewShardedKernel(3)
	sk.Connect(0, 2, 10)
	sk.Connect(1, 2, 10)
	a := sk.NewStream(0, 2) // id 0
	b := sk.NewStream(0, 2) // id 1
	c := sk.NewStream(1, 2) // id 2
	rec := &recHandler{}
	// Shard 0 sends on b before a; shard 1 sends on c. All land at t=50.
	sk.Shard(0).At(0, func() {
		b.Send(50, rec, 20)
		b.Send(50, rec, 21)
		a.Send(50, rec, 10)
	})
	sk.Shard(1).At(0, func() {
		c.Send(50, rec, 30)
	})
	sk.Run()
	want := []uint64{10, 20, 21, 30}
	if len(rec.got) != len(want) {
		t.Fatalf("got %v, want %v", rec.got, want)
	}
	for i := range want {
		if rec.got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", rec.got, want)
		}
	}
}

type recHandler struct{ got []uint64 }

func (r *recHandler) Handle(arg uint64) { r.got = append(r.got, arg) }

// TestShardedLookaheadViolationPanics: a send earlier than now+dist is a
// model bug and must surface as a panic propagated out of Run.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	sk := NewShardedKernel(2)
	sk.Connect(0, 1, 100)
	s := sk.NewStream(0, 1)
	rec := &recHandler{}
	sk.Shard(0).At(0, func() { s.Send(50, rec, 1) })
	// Keep shard 1 busy so the panic must cross the barrier machinery.
	sk.Shard(1).At(0, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("lookahead violation did not panic")
		}
	}()
	sk.Run()
}

// TestShardedConnectValidation: bad topology declarations panic eagerly.
func TestShardedConnectValidation(t *testing.T) {
	sk := NewShardedKernel(2)
	mustPanic(t, "self edge", func() { sk.Connect(0, 0, 10) })
	mustPanic(t, "zero lookahead", func() { sk.Connect(0, 1, 0) })
	mustPanic(t, "self stream", func() { sk.NewStream(1, 1) })
	mustPanic(t, "zero shards", func() { NewShardedKernel(0) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

// TestShardedTransitiveLookahead: shards connected only through an
// intermediate hop get the summed path latency as their pairwise bound.
func TestShardedTransitiveLookahead(t *testing.T) {
	sk := NewShardedKernel(3)
	sk.Connect(0, 1, 100)
	sk.Connect(1, 2, 40)
	sk.seal()
	if got := sk.dist[0][2]; got != 140 {
		t.Fatalf("dist[0][2] = %v, want 140", got)
	}
	if got := sk.dist[2][0]; got != 0 {
		t.Fatalf("dist[2][0] = %v, want 0 (unreachable)", got)
	}
}

// TestShardedRunUntil: events past the limit stay pending, clocks land
// exactly on the limit, and the run resumes cleanly.
func TestShardedRunUntil(t *testing.T) {
	sk, ns := buildRing(4, 2, 1000)
	n := ns[0]
	n.k.AtH(10, n, 1<<16)
	end := sk.RunUntil(5000)
	if end != 5000 {
		t.Fatalf("RunUntil = %v, want 5000", end)
	}
	for i := 0; i < sk.Shards(); i++ {
		if now := sk.Shard(i).Now(); now != 5000 {
			t.Fatalf("shard %d clock %v, want 5000", i, now)
		}
	}
	mid := len(n.trace)
	if mid == 0 {
		t.Fatal("no events before the limit")
	}
	sk.Run()
	if len(n.trace) == mid {
		t.Fatal("no events after resume")
	}
	// The split run must match an uninterrupted one.
	ref, refNs := buildRing(4, 2, 1000)
	refNs[0].k.AtH(10, refNs[0], 1<<16)
	ref.Run()
	if fmt.Sprint(n.trace) != fmt.Sprint(refNs[0].trace) {
		t.Fatal("split RunUntil+Run diverged from an uninterrupted Run")
	}
}

// TestShardedStepToDriver: a driver alternating StepTo barriers with
// control-plane mutations produces identical traces at every shard count —
// the contract the pool chaos campaign depends on.
func TestShardedStepToDriver(t *testing.T) {
	run := func(shards int) [][]tracePt {
		const nodes = 6
		sk, ns := buildRing(nodes, shards, 300)
		for step := 1; step <= 5; step++ {
			at := Time(step * 2000)
			sk.StepTo(at)
			// Driver phase: all shard goroutines joined; inject a token and
			// mutate a node directly.
			n := ns[step%nodes]
			n.k.AtH(at, n, uint64(step)<<16)
			ns[0].limit = 300 + uint64(step)
		}
		sk.Run()
		out := make([][]tracePt, nodes)
		for i, n := range ns {
			out[i] = n.trace
		}
		return out
	}
	want := run(1)
	for _, shards := range []int{2, 3, 6} {
		got := run(shards)
		for i := range want {
			if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
				t.Fatalf("shards=%d node %d trace diverged:\n got %v\nwant %v", shards, i, got[i], want[i])
			}
		}
	}
}

// TestShardedStop: Stop from inside a handler ends the run with events
// still pending on other shards.
func TestShardedStop(t *testing.T) {
	sk, ns := buildRing(4, 4, 1<<15)
	n := ns[0]
	n.k.AtH(10, n, 1<<16)
	stopAt := Time(50_000)
	sk.Shard(1).At(stopAt, func() { sk.Stop() })
	sk.Run()
	if sk.Pending() == 0 {
		t.Fatal("Stop left no pending events; ran to completion")
	}
}

// TestInboxRingWraparound: FIFO order survives interleaved push/drain
// cycling the cursors far past the capacity, across growth.
func TestInboxRingWraparound(t *testing.T) {
	r := newInboxRing(4)
	var got []xmsg
	next, drained := uint64(0), uint64(0)
	check := func() {
		t.Helper()
		got = r.drainInto(got[:0])
		for _, m := range got {
			if m.seq != drained {
				t.Fatalf("drained seq %d, want %d", m.seq, drained)
			}
			drained++
		}
	}
	for round := 0; round < 200; round++ {
		for i := 0; i < 3+round%5; i++ {
			r.push(xmsg{at: Time(next), seq: next})
			next++
		}
		if round%3 != 0 {
			check()
		}
	}
	check()
	if drained != next {
		t.Fatalf("drained %d of %d", drained, next)
	}
	if r.len() != 0 {
		t.Fatalf("ring not empty: %d", r.len())
	}
}

// TestInboxRingGrowAcrossWrap: growth with head mid-buffer preserves order.
func TestInboxRingGrowAcrossWrap(t *testing.T) {
	r := newInboxRing(4)
	for i := uint64(0); i < 3; i++ {
		r.push(xmsg{seq: i})
	}
	var tmp []xmsg
	tmp = r.drainInto(tmp) // head now 3, mid-buffer
	for i := uint64(3); i < 20; i++ {
		r.push(xmsg{seq: i}) // wraps, then grows twice
	}
	tmp = r.drainInto(tmp[:0])
	if len(tmp) != 17 {
		t.Fatalf("drained %d, want 17", len(tmp))
	}
	for i, m := range tmp {
		if m.seq != uint64(i+3) {
			t.Fatalf("pos %d: seq %d, want %d", i, m.seq, i+3)
		}
	}
}

// TestTickerRejectsNonPositivePeriod: a zero or negative period would
// self-schedule at the same instant forever; the kernel must refuse it.
func TestTickerRejectsNonPositivePeriod(t *testing.T) {
	for _, period := range []Duration{0, -5} {
		k := NewKernel()
		mustPanic(t, fmt.Sprintf("Ticker(%d)", period), func() {
			k.Ticker(period, func() bool { return true })
		})
	}
}

// TestRunBelowFrontier: RunBelow leaves the clock at the last dispatched
// event and AdvanceTo refuses to skip pending work.
func TestRunBelowFrontier(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	if end := k.RunBelow(30); end != 20 {
		t.Fatalf("RunBelow(30) = %v, want 20", end)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want [10 20]", fired)
	}
	mustPanic(t, "AdvanceTo past pending", func() { k.AdvanceTo(31) })
	k.AdvanceTo(30)
	if k.Now() != 30 {
		t.Fatalf("now = %v, want 30", k.Now())
	}
	mustPanic(t, "AdvanceTo backwards", func() { k.AdvanceTo(29) })
	k.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %v, want all three", fired)
	}
}

// TestNextEventTime covers the empty, closure-heap, handler-heap, and
// immediate-ring cases.
func TestNextEventTime(t *testing.T) {
	k := NewKernel()
	if _, ok := k.NextEventTime(); ok {
		t.Fatal("empty kernel reported a next event")
	}
	k.At(40, func() {})
	k.AtH(25, &countHandler{}, 0)
	if next, ok := k.NextEventTime(); !ok || next != 25 {
		t.Fatalf("next = %v,%v, want 25,true", next, ok)
	}
}

func BenchmarkShardedRing(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sk, ns := buildRing(8, shards, 2000)
				pre := ringBufCaps(sk)
				n := ns[0]
				n.k.AtH(10, n, 1<<16)
				sk.Run()
				if i == 0 {
					post := ringBufCaps(sk)
					for j := range pre {
						if post[j] != pre[j] {
							b.Fatalf("ring/scratch buffer %d grew mid-run: %d -> %d beats (fan-out hint too small)",
								j, pre[j], post[j])
						}
					}
				}
			}
		})
	}
}

// TestShardedExecutorsAgree pins the two round executors against each
// other: the goroutine-per-shard spin-barrier path (chosen when more than
// one P is available) and the in-line sequential path (GOMAXPROCS == 1)
// must produce identical per-node traces — the executor is a wall-clock
// choice, never a results choice. Forcing GOMAXPROCS covers the parallel
// path even when the test host has a single CPU, and under -race it is
// the stress test for the cross-shard inbox rings and the barrier's
// happens-before edges.
func TestShardedExecutorsAgree(t *testing.T) {
	run := func(procs int) [][]tracePt {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		return ringTraces(t, 3, 600)
	}
	want := run(1)
	got := run(2)
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("node %d: parallel executor %d events, sequential %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("node %d event %d: parallel %+v, sequential %+v", i, j, got[i][j], want[i][j])
			}
		}
	}
}
