// Package sim provides a deterministic discrete-event simulation kernel
// used by every other package in thymesim.
//
// Simulated time is kept in integer picoseconds so that sub-nanosecond
// quantities (link serialization of single bytes, fractions of FPGA clock
// cycles) are represented exactly and runs are bit-for-bit reproducible.
// Events scheduled for the same instant fire in FIFO order of scheduling,
// which makes the kernel deterministic independent of map iteration or
// goroutine interleaving: the kernel is strictly single-threaded.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute simulated time in picoseconds since simulation start.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations, in simulated picoseconds.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable simulation instant. It is used as a
// sentinel for "never".
const MaxTime = Time(1<<63 - 1)

// Add returns t advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e12 }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e6 }

// Nanos converts t to floating-point nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / 1e3 }

// String renders the instant with an adaptive unit.
func (t Time) String() string { return Duration(t).String() }

// Seconds converts d to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e12 }

// Micros converts d to floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e6 }

// Nanos converts d to floating-point nanoseconds.
func (d Duration) Nanos() float64 { return float64(d) / 1e3 }

// Std converts d to a time.Duration, saturating at the representable range.
func (d Duration) Std() time.Duration {
	ns := d / 1000
	return time.Duration(ns) * time.Nanosecond
}

// FromStd converts a wall-clock style duration into simulated picoseconds.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) * 1000 }

// Scale returns d scaled by the dimensionless factor f, rounding to the
// nearest picosecond.
func (d Duration) Scale(f float64) Duration {
	return Duration(float64(d)*f + 0.5)
}

// String renders the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3gns", d.Nanos())
	case d < Millisecond:
		return fmt.Sprintf("%.4gus", d.Micros())
	case d < Second:
		return fmt.Sprintf("%.4gms", float64(d)/1e9)
	default:
		return fmt.Sprintf("%.4gs", d.Seconds())
	}
}

// PerSecond converts a count accumulated over elapsed simulated time into a
// per-second rate. It returns 0 when elapsed is not positive.
func PerSecond(count float64, elapsed Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return count / elapsed.Seconds()
}
