package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// --- differential property test -------------------------------------------
//
// Drive identical randomized arm/cancel/advance schedules through the
// kernel's timer wheel and through a trivially correct sort-based reference
// model, and require the exact same firing sequence (id, time, order).

// refTimer is the reference model's record of one armed timer.
type refTimer struct {
	id  int
	at  Time
	seq uint64
}

// fireLog records wheel-side firings via the Handler interface.
type fireLog struct {
	k     *Kernel
	fired []struct {
		id int
		at Time
	}
}

func (f *fireLog) Handle(arg uint64) {
	f.fired = append(f.fired, struct {
		id int
		at Time
	}{int(arg), f.k.Now()})
}

func TestTimerWheelDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42, 1337, 99991} {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			k := NewKernel()
			log := &fireLog{k: k}

			type armed struct {
				tid TimerID
				ref refTimer
			}
			live := make(map[int]armed)
			var model []refTimer
			nextID := 0

			// Delay distribution mixes all wheel levels plus the heap
			// fallback: sub-tick, level 0-3 spans, and beyond-span arms.
			randDelay := func() Duration {
				switch rng.Intn(6) {
				case 0:
					return Duration(rng.Int63n(int64(Microsecond))) // sub-tick
				case 1:
					return Duration(rng.Int63n(int64(60 * Microsecond)))
				case 2:
					return Duration(rng.Int63n(int64(4 * Millisecond)))
				case 3:
					return Duration(rng.Int63n(int64(250 * Millisecond)))
				case 4:
					return Duration(rng.Int63n(int64(16 * Second)))
				default:
					return Duration(int64(17*Second) + rng.Int63n(int64(Second)))
				}
			}

			// drainDue moves every model timer with deadline <= target into
			// the expected firing sequence in (at, seq) dispatch order.
			var wantFired []refTimer
			drainDue := func(target Time) {
				var due, rest []refTimer
				for _, m := range model {
					if m.at <= target {
						due = append(due, m)
					} else {
						rest = append(rest, m)
					}
				}
				sort.Slice(due, func(a, b int) bool {
					if due[a].at != due[b].at {
						return due[a].at < due[b].at
					}
					return due[a].seq < due[b].seq
				})
				wantFired = append(wantFired, due...)
				model = rest
				for _, m := range due {
					delete(live, m.id)
				}
			}

			steps := 400
			for i := 0; i < steps; i++ {
				switch op := rng.Intn(10); {
				case op < 6: // arm
					d := randDelay()
					id := nextID
					nextID++
					tid := k.ArmTimer(d, log, uint64(id))
					rt := refTimer{id: id, at: k.Now().Add(d), seq: k.seq}
					live[id] = armed{tid: tid, ref: rt}
					model = append(model, rt)
				case op < 8: // cancel a random live timer
					for id, a := range live { // map iteration: any one element
						if !k.CancelTimer(a.tid) {
							t.Fatalf("seed %d: cancel of live timer %d reported not pending", seed, id)
						}
						if k.CancelTimer(a.tid) {
							t.Fatalf("seed %d: double cancel of timer %d reported pending", seed, id)
						}
						delete(live, id)
						for j := range model {
							if model[j].id == id {
								model = append(model[:j], model[j+1:]...)
								break
							}
						}
						break
					}
				default: // advance: run until some instant, firing due timers
					target := k.Now().Add(Duration(rng.Int63n(int64(5 * Millisecond))))
					k.RunUntil(target)
					drainDue(target)
				}
			}
			// Drain everything still armed.
			k.Run()
			drainDue(MaxTime)

			if len(log.fired) != len(wantFired) {
				t.Fatalf("seed %d: wheel fired %d timers, model expects %d",
					seed, len(log.fired), len(wantFired))
			}
			for i, f := range log.fired {
				if f.id != wantFired[i].id || f.at != wantFired[i].at {
					t.Fatalf("seed %d: firing %d = (id %d, %v), model expects (id %d, %v)",
						seed, i, f.id, f.at, wantFired[i].id, wantFired[i].at)
				}
			}
			if len(live) != 0 {
				t.Fatalf("seed %d: %d timers still live after drain", seed, len(live))
			}
			st := k.TimerStats()
			if st.Pending != 0 {
				t.Fatalf("seed %d: TimerStats.Pending = %d after drain", seed, st.Pending)
			}
			if got, want := st.Armed, uint64(nextID); got != want {
				t.Fatalf("seed %d: Armed = %d, want %d", seed, got, want)
			}
			if st.Fired+st.Cancelled != st.Armed {
				t.Fatalf("seed %d: Fired(%d)+Cancelled(%d) != Armed(%d)", seed, st.Fired, st.Cancelled, st.Armed)
			}
			if uint64(len(log.fired)) != st.Fired {
				t.Fatalf("seed %d: log has %d firings, stats say %d", seed, len(log.fired), st.Fired)
			}
		})
	}
}

// TestTimerWheelFiringOrder checks the determinism keystone directly: a
// population of timers armed in random order fires in exactly (deadline,
// arm-order) sequence, and each fires at precisely its deadline — never at
// a slot boundary.
func TestTimerWheelFiringOrder(t *testing.T) {
	for _, seed := range []int64{5, 17, 123} {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		log := &fireLog{k: k}

		type exp struct {
			id  int
			at  Time
			seq int // arm order
		}
		var want []exp
		n := 500
		for i := 0; i < n; i++ {
			// Deliberately collide deadlines (coarse quantization) so the
			// seq tiebreak is exercised, and include same-instant arms.
			d := Duration(rng.Int63n(40)) * 50 * Microsecond
			k.ArmTimer(d, log, uint64(i))
			want = append(want, exp{id: i, at: k.Now().Add(d), seq: i})
		}
		sort.SliceStable(want, func(a, b int) bool {
			if want[a].at != want[b].at {
				return want[a].at < want[b].at
			}
			return want[a].seq < want[b].seq
		})
		k.Run()
		if len(log.fired) != n {
			t.Fatalf("seed %d: fired %d of %d", seed, len(log.fired), n)
		}
		for i, f := range log.fired {
			if f.id != want[i].id || f.at != want[i].at {
				t.Fatalf("seed %d: firing %d = (id %d, %v), want (id %d, %v)",
					seed, i, f.id, f.at, want[i].id, want[i].at)
			}
		}
	}
}

// TestTimerWheelInterleavesWithEvents checks that wheel timers merge into
// the (time, seq) order of ordinary At/AtH events: a timer and an event at
// the same instant dispatch in arm order regardless of which waits where.
func TestTimerWheelInterleavesWithEvents(t *testing.T) {
	k := NewKernel()
	var order []string
	log := handlerFunc(func(arg uint64) { order = append(order, "timer") })

	k.After(100*Microsecond, func() { order = append(order, "event-before") })
	k.ArmTimer(100*Microsecond, log, 0)
	k.After(100*Microsecond, func() { order = append(order, "event-after") })
	k.Run()

	want := []string{"event-before", "timer", "event-after"}
	if len(order) != len(want) {
		t.Fatalf("dispatched %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatched %v, want %v", order, want)
		}
	}
}

type handlerFunc func(arg uint64)

func (f handlerFunc) Handle(arg uint64) { f(arg) }

// --- stale cancel after recycle -------------------------------------------
//
// Mirrors the ARQ use-after-recycle suite: a TimerID held across its
// timer's firing (or cancellation) must become inert even after the
// underlying cell is recycled by a later arm — cancelling it must not
// disturb the new tenant.

func TestTimerWheelStaleCancelAfterRecycle(t *testing.T) {
	k := NewKernel()
	log := &fireLog{k: k}

	first := k.ArmTimer(10*Microsecond, log, 1)
	k.Run() // timer 1 fires; its cell returns to the free list
	if len(log.fired) != 1 || log.fired[0].id != 1 {
		t.Fatalf("first timer did not fire: %+v", log.fired)
	}
	if first.Active() {
		t.Fatal("fired TimerID still reports Active")
	}

	// Recycle: the next arm reuses the freed cell (LIFO free list).
	second := k.ArmTimer(10*Microsecond, log, 2)
	if second.c != first.c {
		t.Fatalf("free list did not recycle the cell (%p vs %p)", second.c, first.c)
	}
	if k.CancelTimer(first) {
		t.Fatal("stale cancel of recycled cell reported a pending timer")
	}
	if !second.Active() {
		t.Fatal("stale cancel killed the cell's new tenant")
	}
	k.Run()
	if len(log.fired) != 2 || log.fired[1].id != 2 {
		t.Fatalf("second tenant did not fire: %+v", log.fired)
	}

	// Same property for a cancel/cancel pair.
	third := k.ArmTimer(10*Microsecond, log, 3)
	if !k.CancelTimer(third) {
		t.Fatal("cancel of live timer reported not pending")
	}
	fourth := k.ArmTimer(10*Microsecond, log, 4)
	if fourth.c != third.c {
		t.Fatalf("free list did not recycle the cancelled cell")
	}
	if k.CancelTimer(third) {
		t.Fatal("stale cancel (after cancel) reported a pending timer")
	}
	k.Run()
	if len(log.fired) != 3 || log.fired[2].id != 4 {
		t.Fatalf("timer 4 did not fire: %+v", log.fired)
	}
}

// TestTimerWheelCancelCollected cancels a timer after it has been collected
// into the handler heap but before it dispatches: the in-heap entry must
// no-op and the id must read as cancelled.
func TestTimerWheelCancelCollected(t *testing.T) {
	k := NewKernel()
	log := &fireLog{k: k}

	// The victim's deadline (10.5µs) shares a 1µs wheel slot with the
	// driver event at 10µs, so when step considers the 10µs event the
	// whole slot is collected into the handler heap first. Cancelling
	// from inside that event exercises the collected-cell cancel path.
	victim := k.ArmTimer(Duration(10500*Nanosecond), log, 1)
	k.After(10*Microsecond, func() {
		if victim.c.lvl != cellPending {
			t.Fatalf("victim not collected yet (lvl %d); test premise broken", victim.c.lvl)
		}
		if !k.CancelTimer(victim) {
			t.Fatal("cancel of collected timer reported not pending")
		}
	})
	k.After(20*Microsecond, func() {})
	k.Run()
	if len(log.fired) != 0 {
		t.Fatalf("cancelled collected timer fired: %+v", log.fired)
	}
	st := k.TimerStats()
	if st.Cancelled != 1 || st.Fired != 0 || st.Pending != 0 {
		t.Fatalf("stats after collected-cancel: %+v", st)
	}
}

// TestTimerWheelZeroAndFallback covers the edges: a zero-delay arm fires in
// Post position at the current instant, and beyond-span arms take the heap
// fallback yet stay cancellable.
func TestTimerWheelZeroAndFallback(t *testing.T) {
	k := NewKernel()
	log := &fireLog{k: k}

	k.ArmTimer(0, log, 1)
	k.Run()
	if len(log.fired) != 1 || log.fired[0].at != 0 {
		t.Fatalf("zero-delay arm: %+v", log.fired)
	}

	far := k.ArmTimer(30*Second, log, 2) // beyond the 16.8s wheel span
	if st := k.TimerStats(); st.Fallback != 1 {
		t.Fatalf("expected heap fallback, stats %+v", st)
	}
	if !k.CancelTimer(far) {
		t.Fatal("fallback timer not cancellable")
	}
	k.Run()
	if len(log.fired) != 1 {
		t.Fatalf("cancelled fallback timer fired: %+v", log.fired)
	}

	far2 := k.ArmTimer(30*Second, log, 3)
	_ = far2
	k.Run()
	if len(log.fired) != 2 || log.fired[1].id != 3 {
		t.Fatalf("fallback timer did not fire: %+v", log.fired)
	}
}

// TestTimerWheelAdvanceToExactDeadline reproduces the sharded StepTo
// pattern: AdvanceTo to the exact deadline of a pending wheel timer must
// not panic (NextEventTime must report the exact deadline, not its slot's
// lower bound).
func TestTimerWheelAdvanceToExactDeadline(t *testing.T) {
	k := NewKernel()
	log := &fireLog{k: k}
	// 1.5µs: inside a 1µs tick, so the slot starts before the deadline.
	k.ArmTimer(Duration(1500*Nanosecond), log, 1)
	if next, ok := k.NextEventTime(); !ok || next != Time(1500*Nanosecond) {
		t.Fatalf("NextEventTime = %v, %v; want exact deadline", next, ok)
	}
	k.AdvanceTo(Time(1500 * Nanosecond)) // must not panic
	k.Run()
	if len(log.fired) != 1 || log.fired[0].at != Time(1500*Nanosecond) {
		t.Fatalf("timer after AdvanceTo: %+v", log.fired)
	}
}

// TestTimerWheelWarmedArmCancelAllocs: the arm/cancel churn path must not
// allocate once the cell pool is warmed.
func TestTimerWheelWarmedArmCancelAllocs(t *testing.T) {
	k := NewKernel()
	log := &fireLog{k: k}
	// Warm the pool and the heaps.
	for i := 0; i < 256; i++ {
		id := k.ArmTimer(Duration(i+1)*Microsecond, log, uint64(i))
		if i%2 == 0 {
			k.CancelTimer(id)
		}
	}
	k.Run()
	log.fired = log.fired[:0]
	allocs := testing.AllocsPerRun(1000, func() {
		id := k.ArmTimer(100*Microsecond, log, 0)
		k.CancelTimer(id)
	})
	if allocs != 0 {
		t.Fatalf("warmed arm/cancel allocates %.1f per op", allocs)
	}
}
