package sim

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
)

// ShardedKernel runs K Kernels in parallel under a conservative-PDES
// synchronization protocol (the DRackSim construction): each shard owns a
// disjoint slice of the model and advances independently up to a horizon
// derived from the minimum cross-shard link latency — the lookahead. A
// message from shard t can only materialize at another shard s at or after
// next(t) + dist(t,s), where next(t) is t's earliest pending event and
// dist is the all-pairs shortest declared latency, so every shard may
// safely execute events strictly below
//
//	horizon(s) = min over t != s of next(t) + dist(t, s)
//
// without locks on the hot path. Execution proceeds in rounds: a barrier,
// an inbox-drain + horizon computation, then a parallel RunBelow per
// shard. Cross-shard sends travel through per-pair SPSC inbox rings and
// are injected into the destination kernel in (at, stream, seq) order, a
// key that depends only on the wired topology — never on which shard a
// component landed on or on wall-clock interleaving — so results are
// byte-identical at any shard count >= 2 and any partition.
//
// The zero value is not usable; create with NewShardedKernel.
type ShardedKernel struct {
	shards []*shardState
	// lat is the declared per-edge minimum latency (direct edges only);
	// dist the all-pairs shortest path, both indexed [src][dst]. A zero
	// entry off the diagonal means "no path". rt[s] is the cheapest
	// round trip leaving and re-entering s (0 when no cycle exists): even
	// a shard whose peers are all idle can be woken by an echo of its own
	// sends, no earlier than next[s]+rt[s].
	lat    [][]Duration
	dist   [][]Duration
	rt     []Duration
	sealed bool

	nextStream uint32
	running    bool
	// now is the driver-side clock: the time reached by the last completed
	// Run/RunUntil/StepTo. It is written only between rounds (all shard
	// goroutines joined), never during one — there is no global "now" while
	// shards advance in parallel, so code running inside an event must read
	// its own shard kernel's clock instead.
	now Time

	// Round-global coordination state. next is double-buffered by round
	// parity so one barrier per phase suffices: readers of parity p are
	// all past the end-of-round barrier before parity p is overwritten.
	next    [2][]atomic.Int64
	stopReq atomic.Bool
	stop    [2]atomic.Bool
	barrier spinBarrier

	panicOnce sync.Once
	panicVal  any
}

// shardState is one shard's kernel plus its inbound message plumbing.
type shardState struct {
	k *Kernel
	// in[src] is the SPSC inbox ring from shard src (nil until a stream
	// between the pair exists). Written by src's goroutine during its run
	// phase, drained by this shard's goroutine during its inject phase;
	// the inter-phase barrier provides the happens-before edge.
	in []*inboxRing
	// staged holds drained cross-shard messages, sorted by the
	// deterministic (at, stream, seq) merge key, that have not yet been
	// handed to the kernel. A message is injected only once the shard's
	// horizon passes its instant — at that point no later round can
	// deliver another message for the same instant, so the dispatch order
	// at every instant is a property of the message keys alone, not of
	// which round happened to carry each message.
	staged  []xmsg
	horizon Time
}

// xmsg is one cross-shard event: a Handler dispatch at an instant, stamped
// with its stream id and per-stream sequence number. (at, stream, seq) is
// the total delivery order at the destination — deterministic because
// stream ids are assigned in wiring order and seq in send order, neither of
// which depends on the partition or on scheduling.
type xmsg struct {
	at     Time
	stream uint32
	seq    uint64
	arg    uint64
	h      Handler
}

// NewShardedKernel returns n empty shards, clocks at zero, no edges.
func NewShardedKernel(n int) *ShardedKernel {
	if n < 1 {
		panic(fmt.Sprintf("sim: ShardedKernel of %d shards", n))
	}
	sk := &ShardedKernel{
		shards: make([]*shardState, n),
		lat:    make([][]Duration, n),
		dist:   make([][]Duration, n),
	}
	for i := range sk.shards {
		sk.shards[i] = &shardState{k: NewKernel(), in: make([]*inboxRing, n)}
		sk.lat[i] = make([]Duration, n)
		sk.dist[i] = make([]Duration, n)
	}
	sk.next[0] = make([]atomic.Int64, n)
	sk.next[1] = make([]atomic.Int64, n)
	sk.barrier.n = int32(n)
	return sk
}

// Shards returns the shard count.
func (sk *ShardedKernel) Shards() int { return len(sk.shards) }

// Shard returns shard i's kernel. Components owned by a shard must be
// built against (and scheduled only on) that kernel.
func (sk *ShardedKernel) Shard(i int) *Kernel { return sk.shards[i].k }

// Connect declares that messages from shard src to shard dst always carry
// at least minLatency of simulated delay — the conservative lookahead the
// synchronization protocol exploits. Declaring a latency larger than the
// model's true minimum corrupts causality (and trips the Send guard);
// smaller is safe but slower. Repeat declarations keep the minimum.
func (sk *ShardedKernel) Connect(src, dst int, minLatency Duration) {
	if sk.sealed {
		panic("sim: Connect after the sharded kernel started running")
	}
	if src == dst {
		panic("sim: Connect of a shard to itself")
	}
	if minLatency <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", minLatency))
	}
	if cur := sk.lat[src][dst]; cur == 0 || minLatency < cur {
		sk.lat[src][dst] = minLatency
	}
}

// seal computes the all-pairs lookahead (shortest declared path, since a
// message can be forwarded across shards no faster than the sum of edge
// latencies) and freezes the topology.
func (sk *ShardedKernel) seal() {
	if sk.sealed {
		return
	}
	n := len(sk.shards)
	for i := 0; i < n; i++ {
		copy(sk.dist[i], sk.lat[i])
	}
	for via := 0; via < n; via++ {
		for i := 0; i < n; i++ {
			d := sk.dist[i][via]
			if d == 0 || i == via {
				continue
			}
			for j := 0; j < n; j++ {
				e := sk.dist[via][j]
				if e == 0 || j == i {
					continue
				}
				if cur := sk.dist[i][j]; cur == 0 || d+e < cur {
					sk.dist[i][j] = d + e
				}
			}
		}
	}
	sk.rt = make([]Duration, n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if t == s || sk.dist[s][t] == 0 || sk.dist[t][s] == 0 {
				continue
			}
			if cycle := sk.dist[s][t] + sk.dist[t][s]; sk.rt[s] == 0 || cycle < sk.rt[s] {
				sk.rt[s] = cycle
			}
		}
	}
	sk.sealed = true
}

// Stream is one ordered cross-shard message channel. A stream has a single
// producer — code running on its source shard — and delivers to the
// destination shard in (at, stream id, seq) order. Create every stream at
// wiring time, in the same order regardless of partition, so ids (and
// therefore same-instant delivery order) are partition-invariant.
type Stream struct {
	sk       *ShardedKernel
	src, dst int
	id       uint32
	seq      uint64
	ring     *inboxRing
	srcK     *Kernel
}

// NewStream wires a message channel from shard src to shard dst. The pair
// must have a Connect edge (directly or via other shards) before the
// kernel runs.
func (sk *ShardedKernel) NewStream(src, dst int) *Stream {
	return sk.NewStreamCap(src, dst, 0)
}

// NewStreamCap is NewStream with a capacity hint: the pair's shared inbox
// ring is pre-sized to hold at least hint in-flight messages, so a
// correctly-hinted topology never grows a ring mid-round. Hints are
// maxed, not summed — callers sharing a shard pair should each pass the
// pair's total expected fan-in. A hint <= 0 keeps the default sizing.
func (sk *ShardedKernel) NewStreamCap(src, dst, hint int) *Stream {
	if sk.sealed {
		panic("sim: NewStream after the sharded kernel started running")
	}
	if src == dst {
		panic("sim: stream from a shard to itself")
	}
	r := sk.shards[dst].in[src]
	if r == nil {
		r = newInboxRing(64)
		sk.shards[dst].in[src] = r
	}
	if hint > 0 {
		r.reserve(hint)
		// The drain scratch absorbs every inbox ring in one inject phase;
		// size it alongside so a hinted topology's steady-state rounds
		// never grow it either.
		st := sk.shards[dst]
		total := 0
		for _, ring := range st.in {
			if ring != nil {
				total += len(ring.buf)
			}
		}
		if cap(st.staged) < total {
			nb := make([]xmsg, len(st.staged), total)
			copy(nb, st.staged)
			st.staged = nb
		}
	}
	s := &Stream{sk: sk, src: src, dst: dst, id: sk.nextStream, ring: r, srcK: sk.shards[src].k}
	sk.nextStream++
	return s
}

// Send schedules h.Handle(arg) on the destination shard at the absolute
// instant at. It must be called from code executing on the source shard,
// and at must respect the declared lookahead — arriving earlier than
// now + dist(src, dst) would mean the destination may already have run
// past it. Violations panic: they are model bugs, exactly like scheduling
// into the past on a single Kernel.
func (s *Stream) Send(at Time, h Handler, arg uint64) {
	d := s.sk.dist[s.src][s.dst]
	if d == 0 {
		panic(fmt.Sprintf("sim: stream %d->%d has no Connect path", s.src, s.dst))
	}
	if min := s.srcK.Now().Add(d); at < min {
		panic(fmt.Sprintf("sim: cross-shard send at %v violates lookahead (now %v + dist %v)",
			at, s.srcK.Now(), d))
	}
	s.seq++
	s.ring.push(xmsg{at: at, stream: s.id, seq: s.seq, arg: arg, h: h})
}

// inject drains every inbox ring, merges the messages into (at, stream,
// seq) order, and schedules them on the shard's kernel. Heap ties at equal
// timestamps resolve by local seq, which AtH assigns in injection order,
// so the sorted order is preserved through dispatch.
func xmsgCmp(a, b xmsg) int {
	switch {
	case a.at != b.at:
		if a.at < b.at {
			return -1
		}
		return 1
	case a.stream != b.stream:
		if a.stream < b.stream {
			return -1
		}
		return 1
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

// drain pulls this round's cross-shard arrivals into the staged buffer
// and returns the earliest staged instant (MaxTime when empty). The
// result counts toward the shard's published next-event time: a staged
// message is work this shard will do, even when its own heap is empty.
func (s *shardState) drain() Time {
	had := len(s.staged)
	for _, r := range s.in {
		if r != nil {
			s.staged = r.drainInto(s.staged)
		}
	}
	if len(s.staged) > had {
		slices.SortFunc(s.staged, xmsgCmp)
	}
	if len(s.staged) == 0 {
		return MaxTime
	}
	return s.staged[0].at
}

// injectBelow moves every staged message with at < horizon into the
// kernel's front band, preserving (at, stream, seq) order. Messages at or
// past the horizon stay staged: a later round may still deliver messages
// for those instants.
func (s *shardState) injectBelow(horizon Time) {
	cut := 0
	for cut < len(s.staged) && s.staged[cut].at < horizon {
		m := &s.staged[cut]
		s.k.AtHFront(m.at, m.h, m.arg)
		m.h = nil // release for GC; the buffer is reused
		cut++
	}
	if cut == 0 {
		return
	}
	rest := copy(s.staged, s.staged[cut:])
	for i := rest; i < len(s.staged); i++ {
		s.staged[i] = xmsg{}
	}
	s.staged = s.staged[:rest]
}

// Run dispatches events on every shard until all queues drain (or Stop),
// and returns the latest shard clock.
func (sk *ShardedKernel) Run() Time { return sk.RunUntil(MaxTime) }

// RunUntil dispatches events with timestamps <= limit on every shard,
// advances every shard clock to limit if it was reached with events still
// pending, and returns the final time. Reentrant calls panic.
func (sk *ShardedKernel) RunUntil(limit Time) Time {
	capEx := MaxTime
	if limit < MaxTime {
		capEx = limit + 1
	}
	sk.runRounds(capEx)
	end := Time(0)
	for _, s := range sk.shards {
		if s.k.Now() > end {
			end = s.k.Now()
		}
	}
	if limit != MaxTime && !sk.stopReq.Load() {
		for _, s := range sk.shards {
			if next, ok := s.k.NextEventTime(); !ok || next > limit {
				if s.k.Now() < limit {
					s.k.AdvanceTo(limit)
				}
			}
		}
		if end < limit {
			end = limit
		}
	}
	sk.now = end
	return end
}

// StepTo dispatches every event strictly before t and then advances every
// shard clock to exactly t. With all shard goroutines joined, the caller
// may touch any shard's components single-threaded — the hook experiment
// drivers use to apply control-plane phases (fault injection, attach
// churn) at a deterministic global instant, exactly as a single-kernel
// driver event at t would.
func (sk *ShardedKernel) StepTo(t Time) {
	sk.runRounds(t)
	for _, s := range sk.shards {
		s.k.AdvanceTo(t)
	}
	sk.now = t
}

// Stop makes the current Run/RunUntil return after the in-progress round.
// Pending events remain queued.
func (sk *ShardedKernel) Stop() { sk.stopReq.Store(true) }

// Processed reports the total events dispatched across all shards.
func (sk *ShardedKernel) Processed() uint64 {
	var n uint64
	for _, s := range sk.shards {
		n += s.k.Processed()
	}
	return n
}

// Now returns the time reached by the last completed Run/RunUntil/StepTo.
// It is a driver-side clock: between runs it equals every shard's clock,
// but from inside an event it lags the executing shard (shards advance in
// parallel; no global instant exists mid-run). Event code that needs the
// current simulated time must ask the kernel it runs on.
func (sk *ShardedKernel) Now() Time { return sk.now }

// Pending reports how many events are scheduled but not yet dispatched
// across all shards, including cross-shard messages still staged or in
// flight through inbox rings. Like Now, it is a driver-side query; calling
// it while a run is in progress races with the shard goroutines.
func (sk *ShardedKernel) Pending() int {
	n := 0
	for _, s := range sk.shards {
		n += s.k.Pending() + len(s.staged)
		for _, r := range s.in {
			if r != nil {
				n += r.len()
			}
		}
	}
	return n
}

// runRounds executes the conservative window protocol with one goroutine
// per shard until every event strictly below capEx has been dispatched.
// Two barriers per round; no per-event synchronization of any kind.
func (sk *ShardedKernel) runRounds(capEx Time) {
	if sk.running {
		panic("sim: ShardedKernel.Run called reentrantly")
	}
	sk.running = true
	defer func() { sk.running = false }()
	sk.seal()
	sk.stopReq.Store(false)
	sk.barrier.poisoned.Store(false)

	n := len(sk.shards)
	if n == 1 {
		// Degenerate case: plain sequential execution (a single shard has
		// no streams, so there is nothing to drain or inject).
		sk.shards[0].k.RunBelow(capEx)
		return
	}
	if runtime.GOMAXPROCS(0) == 1 {
		// One P: goroutine-per-shard would just thrash the scheduler at
		// every barrier. The round protocol is deterministic, so run the
		// identical phases in-line — same rounds, same horizons, same
		// injection order, byte-identical results.
		sk.runRoundsSequential(capEx)
		return
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(me int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					sk.panicOnce.Do(func() { sk.panicVal = r })
					sk.barrier.poison()
				}
			}()
			sk.shardLoop(me, capEx)
		}(i)
	}
	wg.Wait()
	if sk.barrier.poisoned.Load() && sk.panicVal != nil {
		panic(sk.panicVal)
	}
}

// runRoundsSequential executes the same round protocol as the shard
// goroutines, one shard at a time on the calling goroutine: drain every
// inbox and collect next-event times, derive each shard's horizon from the
// same published values, then inject and run each shard below it. The
// phase structure, horizons, and injection order are identical to the
// parallel executor, so results are byte-identical — only wall-clock
// scheduling differs.
func (sk *ShardedKernel) runRoundsSequential(capEx Time) {
	n := len(sk.shards)
	nexts := sk.next[0]
	for {
		if sk.stopReq.Load() {
			return
		}
		minNext := Time(MaxTime)
		for i, s := range sk.shards {
			next := int64(MaxTime)
			if t, ok := s.k.NextEventTime(); ok {
				next = int64(t)
			}
			if stagedNext := s.drain(); int64(stagedNext) < next {
				next = int64(stagedNext)
			}
			nexts[i].Store(next)
			if Time(next) < minNext {
				minNext = Time(next)
			}
		}
		if minNext >= capEx {
			return
		}
		for me, s := range sk.shards {
			horizon := capEx
			for t := 0; t < n; t++ {
				tn := Time(nexts[t].Load())
				if t == me || tn == MaxTime {
					continue
				}
				d := sk.dist[t][me]
				if d == 0 {
					continue
				}
				if h := tn.Add(d); h < horizon {
					horizon = h
				}
			}
			next := nexts[me].Load()
			if rt := sk.rt[me]; rt > 0 && next != int64(MaxTime) {
				if h := Time(next).Add(rt); h < horizon {
					horizon = h
				}
			}
			s.injectBelow(horizon)
			s.k.RunBelow(horizon)
		}
	}
}

// shardLoop is one shard goroutine's round loop.
func (sk *ShardedKernel) shardLoop(me int, capEx Time) {
	s := sk.shards[me]
	n := len(sk.shards)
	for round := 0; ; round++ {
		p := round & 1
		// Drain phase: pull messages produced last round into the staged
		// buffer, publish my next-event time (earliest of heap and staged
		// work) for this round's horizon computation.
		stagedNext := s.drain()
		next := int64(MaxTime)
		if t, ok := s.k.NextEventTime(); ok {
			next = int64(t)
		}
		if int64(stagedNext) < next {
			next = int64(stagedNext)
		}
		sk.next[p][me].Store(next)
		if me == 0 {
			sk.stop[p].Store(sk.stopReq.Load())
		}
		if !sk.barrier.wait() {
			return
		}
		// Horizon phase: every shard reads the same published values and
		// reaches the same done verdict — no coordinator.
		if sk.stop[p].Load() {
			return
		}
		minNext := Time(MaxTime)
		horizon := capEx
		for t := 0; t < n; t++ {
			tn := Time(sk.next[p][t].Load())
			if tn < minNext {
				minNext = tn
			}
			if t == me || tn == MaxTime {
				continue
			}
			d := sk.dist[t][me]
			if d == 0 {
				continue // unreachable: no constraint
			}
			if h := tn.Add(d); h < horizon {
				horizon = h
			}
		}
		// Even an idle neighborhood can bounce my own sends back at me:
		// the earliest possible echo is my next event plus the cheapest
		// round trip through any other shard.
		if rt := sk.rt[me]; rt > 0 && next != int64(MaxTime) {
			if h := Time(next).Add(rt); h < horizon {
				horizon = h
			}
		}
		if minNext >= capEx {
			return // every remaining event is at/after the cap
		}
		// Run phase: inject the staged messages that are now final (no
		// later round can add to their instants), then execute my events
		// strictly below the horizon, buffering cross-shard sends into
		// the inbox rings.
		s.injectBelow(horizon)
		s.k.RunBelow(horizon)
		if !sk.barrier.wait() {
			return
		}
	}
}

// spinBarrier is a reusable sense-reversing barrier. Shards spin with
// Gosched rather than parking: rounds are microseconds apart and the
// cross-core wake latency of a futex would dominate the window. poison
// releases every waiter permanently (panic propagation).
type spinBarrier struct {
	n        int32
	count    atomic.Int32
	gen      atomic.Uint32
	poisoned atomic.Bool
}

// wait blocks until all n parties arrive; it reports false if the barrier
// was poisoned (some shard panicked) and the caller must unwind.
func (b *spinBarrier) wait() bool {
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return !b.poisoned.Load()
	}
	for b.gen.Load() == g {
		if b.poisoned.Load() {
			return false
		}
		runtime.Gosched()
	}
	return !b.poisoned.Load()
}

// poison releases all current and future waiters.
func (b *spinBarrier) poison() { b.poisoned.Store(true) }

// inboxRing is the SPSC ring between one ordered shard pair: the source
// shard's goroutine pushes during its run phase, the destination's drains
// during its inject phase, and the round barrier between the two phases
// publishes the writes. Capacity grows by doubling on overflow (power-of-
// two sizes, monotonic cursors), so a warmed ring never allocates.
type inboxRing struct {
	buf        []xmsg
	head, tail uint64
}

// newInboxRing returns a ring with capacity rounded up to a power of two.
func newInboxRing(capacity int) *inboxRing {
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &inboxRing{buf: make([]xmsg, c)}
}

// len reports the queued message count.
func (r *inboxRing) len() int { return int(r.tail - r.head) }

// push appends m, growing the ring if full.
func (r *inboxRing) push(m xmsg) {
	if r.len() == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail&uint64(len(r.buf)-1)] = m
	r.tail++
}

// reserve grows the ring until it can hold at least n messages. Wiring
// time only (single-threaded; push/drain may run concurrently later).
func (r *inboxRing) reserve(n int) {
	for len(r.buf) < n {
		r.grow()
	}
}

// grow doubles capacity, preserving FIFO order.
func (r *inboxRing) grow() {
	old := r.buf
	mask := uint64(len(old) - 1)
	r.buf = make([]xmsg, 2*len(old))
	n := uint64(0)
	for i := r.head; i != r.tail; i++ {
		r.buf[n] = old[i&mask]
		n++
	}
	r.head = 0
	r.tail = n
}

// drainInto appends every queued message to dst in push order, clearing
// the ring (handler refs released for GC).
func (r *inboxRing) drainInto(dst []xmsg) []xmsg {
	mask := uint64(len(r.buf) - 1)
	for r.head != r.tail {
		i := r.head & mask
		dst = append(dst, r.buf[i])
		r.buf[i] = xmsg{}
		r.head++
	}
	return dst
}
