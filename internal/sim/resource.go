package sim

// Server models a work-conserving FIFO resource that serves one job at a
// time (a link serializing bytes, a DRAM data bus, a CPU issuing one command
// per cycle). Jobs occupy the server for a caller-provided service time and
// a callback fires when service completes.
type Server struct {
	k      *Kernel
	freeAt Time
	// Busy accounting for utilization reporting.
	busy    Duration
	served  uint64
	maxWait Duration
}

// NewServer returns an idle server attached to k.
func NewServer(k *Kernel) *Server { return &Server{k: k} }

// Serve enqueues a job with the given service time and schedules done (if
// non-nil) at its completion instant, which is also returned. Jobs are
// served in arrival order.
func (s *Server) Serve(service Duration, done func()) Time {
	if service < 0 {
		panic("sim: negative service time")
	}
	start := s.k.Now()
	if s.freeAt > start {
		wait := s.freeAt.Sub(start)
		if wait > s.maxWait {
			s.maxWait = wait
		}
		start = s.freeAt
	}
	end := start.Add(service)
	s.freeAt = end
	s.busy += service
	s.served++
	if done != nil {
		s.k.At(end, done)
	}
	return end
}

// ServeH is the closure-free analog of Serve: h.Handle(arg) is scheduled
// at the completion instant instead of a func callback.
func (s *Server) ServeH(service Duration, h Handler, arg uint64) Time {
	if service < 0 {
		panic("sim: negative service time")
	}
	start := s.k.Now()
	if s.freeAt > start {
		wait := s.freeAt.Sub(start)
		if wait > s.maxWait {
			s.maxWait = wait
		}
		start = s.freeAt
	}
	end := start.Add(service)
	s.freeAt = end
	s.busy += service
	s.served++
	s.k.AtH(end, h, arg)
	return end
}

// FreeAt returns the instant at which the server next becomes idle.
func (s *Server) FreeAt() Time { return s.freeAt }

// Served returns the number of jobs accepted so far.
func (s *Server) Served() uint64 { return s.served }

// BusyTime returns the cumulative service time accepted so far.
func (s *Server) BusyTime() Duration { return s.busy }

// MaxWait returns the largest queueing delay observed so far.
func (s *Server) MaxWait() Duration { return s.maxWait }

// Utilization returns busy time divided by elapsed, where elapsed is
// measured from simulation start to now.
func (s *Server) Utilization() float64 {
	now := s.k.Now()
	if now == 0 {
		return 0
	}
	return s.busy.Seconds() / Time(now).Seconds()
}

// CreditPool is a counted semaphore with a FIFO waiter queue, used to model
// MSHR slots and OpenCAPI link credits. Acquire either succeeds immediately
// or parks the callback until a credit is released.
type CreditPool struct {
	k        *Kernel
	capacity int
	avail    int
	waiters  []waiter
	// peakWaiters tracks the deepest backlog for diagnostics.
	peakWaiters int
	acquires    uint64
}

// waiter is one parked acquirer: either a func callback or a Handler/arg
// pair (exactly one is set), mirroring the two scheduling flavors.
type waiter struct {
	fn  func()
	h   Handler
	arg uint64
}

// NewCreditPool returns a pool with the given capacity, all credits
// available.
func NewCreditPool(k *Kernel, capacity int) *CreditPool {
	if capacity <= 0 {
		panic("sim: CreditPool capacity must be positive")
	}
	return &CreditPool{k: k, capacity: capacity, avail: capacity}
}

// Capacity returns the configured credit count.
func (p *CreditPool) Capacity() int { return p.capacity }

// Available returns the number of free credits.
func (p *CreditPool) Available() int { return p.avail }

// InUse returns the number of credits currently held.
func (p *CreditPool) InUse() int { return p.capacity - p.avail }

// Waiting returns the number of parked acquirers.
func (p *CreditPool) Waiting() int { return len(p.waiters) }

// PeakWaiting returns the deepest waiter backlog observed.
func (p *CreditPool) PeakWaiting() int { return p.peakWaiters }

// Acquires returns the number of successful acquisitions so far.
func (p *CreditPool) Acquires() uint64 { return p.acquires }

// Acquire grants a credit to fn: immediately if one is free, otherwise when
// a holder releases. Grants are FIFO.
func (p *CreditPool) Acquire(fn func()) {
	if p.avail > 0 {
		p.avail--
		p.acquires++
		fn()
		return
	}
	p.waiters = append(p.waiters, waiter{fn: fn})
	if len(p.waiters) > p.peakWaiters {
		p.peakWaiters = len(p.waiters)
	}
}

// AcquireH is the closure-free analog of Acquire: h.Handle(arg) runs
// synchronously if a credit is free, otherwise the pair is parked FIFO.
func (p *CreditPool) AcquireH(h Handler, arg uint64) {
	if p.avail > 0 {
		p.avail--
		p.acquires++
		h.Handle(arg)
		return
	}
	p.waiters = append(p.waiters, waiter{h: h, arg: arg})
	if len(p.waiters) > p.peakWaiters {
		p.peakWaiters = len(p.waiters)
	}
}

// TryAcquire takes a credit without blocking and reports whether it
// succeeded.
func (p *CreditPool) TryAcquire() bool {
	if p.avail > 0 {
		p.avail--
		p.acquires++
		return true
	}
	return false
}

// Release returns one credit, handing it to the oldest waiter if any. The
// waiter runs as a fresh kernel event at the current instant, keeping grant
// chains shallow and causally ordered.
func (p *CreditPool) Release() {
	if len(p.waiters) > 0 {
		w := p.waiters[0]
		copy(p.waiters, p.waiters[1:])
		p.waiters[len(p.waiters)-1] = waiter{} // release callback refs for GC
		p.waiters = p.waiters[:len(p.waiters)-1]
		p.acquires++
		if w.h != nil {
			p.k.PostH(w.h, w.arg)
		} else {
			p.k.Post(w.fn)
		}
		return
	}
	p.avail++
	if p.avail > p.capacity {
		panic("sim: CreditPool over-released")
	}
}
