package sim

import (
	"fmt"
	"math/bits"
)

// This file implements the kernel's hierarchical timer wheel: O(1) arm and
// true O(1) cancel for the simulator's cancellable-timer population (ARQ
// retransmission timeouts, fill deadlines, supervisor heartbeats, breaker
// dwells, tickers). Before the wheel, cancellation was lazy — a cancelled
// timer stayed in the 4-ary heap, was sifted past by every live event, and
// eventually fired as a generation-guarded no-op. At rack scale the dead
// timers dominate heap traffic: every successful remote fill leaves behind
// an ARQ timeout and a fill deadline that outlive it by orders of magnitude.
//
// Layout: wheelLevels levels of wheelSlots slots each. A level-l slot spans
// 64^l ticks of wheelTickPs picoseconds, so the wheel covers 64^4 ticks
// (~16.8 simulated seconds at the 1µs tick) before falling back to the
// heap. Each slot is an intrusive doubly-linked list of timerCells drawn
// from a pointer-stable free list, and a per-level occupancy bitmap makes
// empty-slot skipping a RotateLeft64+TrailingZeros64.
//
// Determinism contract: ArmTimer consumes one seq from the kernel's normal
// band at arm time, exactly as AfterH would. When a timer becomes due its
// cell is moved into the handler heap carrying that original (at, seq) key,
// so the dispatch order of live timers is byte-identical to the pre-wheel
// schedule — the wheel only changes *where* a timer waits, never *when* it
// fires. Cancelled timers simply never fire (they were no-ops before).

const (
	wheelLevels   = 4
	wheelSlotBits = 6
	wheelSlots    = 1 << wheelSlotBits // 64 slots per level
	wheelSlotMask = wheelSlots - 1

	// wheelTickPs is the level-0 granularity. Timers are collected into the
	// handler heap with their exact deadline preserved, so the tick size
	// only bounds how early a cell may enter the heap, not firing accuracy.
	wheelTickPs = int64(Microsecond)
)

// timerCell states carried in level: >= 0 means linked into that wheel
// level, the negatives mean free-listed or already handed to the heaps.
const (
	cellFree    int8 = -1
	cellPending int8 = -2 // in hq/iq (collected, or heap-fallback arm)
)

// A timerCell is one armed (or pooled) timer. Cells live in batches that
// are never freed, so cell pointers are stable for the kernel's lifetime
// and a TimerID can carry one safely; gen disambiguates reuse. The cell
// itself is the Handler pushed into the event heap at collection time —
// Handle receives the generation captured at arm and drops the dispatch if
// the timer was cancelled (or the cell recycled) in between.
type timerCell struct {
	at   Time
	seq  uint64
	arg  uint64
	gen  uint64
	h    Handler
	w    *timerWheel
	prev *timerCell
	next *timerCell
	lvl  int8
	slot int16
}

// Handle dispatches the armed callback if the cell still belongs to the
// generation that was collected; a cancelled or recycled cell no-ops, which
// is the only lazy path left (cancel between collection and dispatch).
func (c *timerCell) Handle(gen uint64) {
	if c.gen != gen {
		return
	}
	h, arg := c.h, c.arg
	c.w.fired++
	c.w.release(c)
	h.Handle(arg)
}

// A TimerID names one arming of one timer. The zero value is no timer;
// cancelling it is a no-op. IDs stay safe after the timer fires or is
// cancelled — the generation check makes a stale cancel a cheap no-op —
// but they are only meaningful on the kernel that issued them.
type TimerID struct {
	c   *timerCell
	gen uint64
}

// Active reports whether the id still names a pending timer (armed and
// neither fired nor cancelled).
func (id TimerID) Active() bool { return id.c != nil && id.c.gen == id.gen }

// TimerStats counts wheel activity since kernel creation.
type TimerStats struct {
	Armed     uint64 // ArmTimer calls
	Cancelled uint64 // CancelTimer calls that found a live timer
	Fired     uint64 // timers whose handler actually ran
	Fallback  uint64 // arms routed to the heap (beyond wheel span)
	Pending   int    // timers currently armed (wheel slots + collected)
}

type timerWheel struct {
	slots [wheelLevels][wheelSlots]*timerCell
	occ   [wheelLevels]uint64 // bit s set ⇔ slots[l][s] non-empty

	// cur is the collection cursor in ticks: every armed cell has
	// tick(at) >= cur, and cur never runs ahead of the earliest armed
	// cell's tick, so a fresh arm never lands behind the cursor.
	cur int64

	// count is the number of cells linked into slots (collected cells are
	// accounted by the handler heap they moved to). pendingHeap counts
	// collected-or-fallback cells whose dispatch is still outstanding.
	count       int
	pendingHeap int

	// nextLB is a lower bound on the earliest armed cell's deadline
	// (MaxTime when no cells are linked). It may be stale-low after a
	// cancellation; collection refreshes it.
	nextLB Time

	// nextAt is the exact earliest armed deadline, maintained lazily:
	// valid while nextDirty is false. Cancelling the minimum or collecting
	// invalidates it; NextEventTime recomputes on demand.
	nextAt    Time
	nextDirty bool

	free *timerCell

	armed, cancelled, fired, fallback uint64
}

func wheelTick(t Time) int64 { return int64(t) / wheelTickPs }

// alloc returns a free cell, minting a batch when the free list is empty.
// Batches are single allocations; a warmed kernel never allocates here.
func (w *timerWheel) alloc() *timerCell {
	if w.free == nil {
		batch := make([]timerCell, 64)
		for i := range batch {
			batch[i].w = w
			batch[i].lvl = cellFree
			batch[i].next = w.free
			w.free = &batch[i]
		}
	}
	c := w.free
	w.free = c.next
	c.next = nil
	return c
}

// release recycles a cell: the generation bump orphans every outstanding
// TimerID and heap entry that still points at it.
func (w *timerWheel) release(c *timerCell) {
	if c.lvl == cellPending {
		w.pendingHeap--
	}
	c.gen++
	c.h = nil
	c.prev = nil
	c.lvl = cellFree
	c.next = w.free
	w.free = c
}

// insert links an armed cell into the innermost level whose current window
// reaches its deadline. It reports false when the deadline lies beyond the
// top level's window (heap fallback). Cells with tick(at) >= cur always
// find a level or overflow the span; tick(at) < cur cannot happen (cur
// trails the earliest armed cell and arms are never in the past).
func (w *timerWheel) insert(c *timerCell) bool {
	tick := wheelTick(c.at)
	if tick < w.cur {
		// Defensive: a behind-cursor cell would link into a slot the
		// collection sweep already passed. The heap fallback is always
		// correct, just slower.
		return false
	}
	for l := 0; l < wheelLevels; l++ {
		sh := uint(wheelSlotBits * l)
		if (tick>>sh)-(w.cur>>sh) >= wheelSlots {
			continue
		}
		slot := int((tick >> sh) & wheelSlotMask)
		c.lvl = int8(l)
		c.slot = int16(slot)
		c.prev = nil
		c.next = w.slots[l][slot]
		if c.next != nil {
			c.next.prev = c
		}
		w.slots[l][slot] = c
		w.occ[l] |= 1 << uint(slot)
		w.count++
		if start := Time((tick >> sh << sh) * wheelTickPs); start < w.nextLB {
			w.nextLB = start
		}
		if !w.nextDirty && c.at < w.nextAt {
			w.nextAt = c.at
		}
		return true
	}
	return false
}

// unlink removes a slot-resident cell from its list, clearing the occupancy
// bit when the slot empties.
func (w *timerWheel) unlink(c *timerCell) {
	if c.next != nil {
		c.next.prev = c.prev
	}
	if c.prev != nil {
		c.prev.next = c.next
	} else {
		w.slots[c.lvl][c.slot] = c.next
		if c.next == nil {
			w.occ[c.lvl] &^= 1 << uint(c.slot)
		}
	}
	c.prev, c.next = nil, nil
	w.count--
}

// nextOccupied returns the earliest occupied slot's start tick and level.
// It must not be called on an empty wheel. Every occupied slot at level l
// sits within 64 level-l slots at or after cur's, so rotating the bitmap
// by cur's slot index turns "next occupied at-or-after" into a trailing-
// zeros count.
func (w *timerWheel) nextOccupied() (int64, int) {
	best := int64(1<<63 - 1)
	bl := -1
	for l := 0; l < wheelLevels; l++ {
		if w.occ[l] == 0 {
			continue
		}
		sh := uint(wheelSlotBits * l)
		curSlot := w.cur >> sh
		off := bits.TrailingZeros64(bits.RotateLeft64(w.occ[l], -int(curSlot&wheelSlotMask)))
		start := (curSlot + int64(off)) << sh
		if start < best {
			best, bl = start, l
		}
	}
	if bl < 0 {
		panic("sim: nextOccupied on empty wheel")
	}
	return best, bl
}

// collectEarliest advances the cursor to the earliest occupied slot if its
// window begins at or before bound, cascading an outer-level slot into the
// levels below or moving a level-0 slot's cells into the handler heap with
// their original (at, seq) keys. When the earliest slot begins after bound
// it only refreshes the (possibly stale-low) nextLB.
func (w *timerWheel) collectEarliest(k *Kernel, bound Time) {
	t0, l := w.nextOccupied()
	sh := uint(wheelSlotBits * l)
	start := Time(t0 * wheelTickPs)
	if start > bound {
		w.nextLB = start
		return
	}
	w.cur = t0
	slot := int((t0 >> sh) & wheelSlotMask)
	head := w.slots[l][slot]
	w.slots[l][slot] = nil
	w.occ[l] &^= 1 << uint(slot)
	if l == 0 {
		for c := head; c != nil; {
			nx := c.next
			c.prev, c.next = nil, nil
			c.lvl = cellPending
			w.count--
			w.pendingHeap++
			w.nextDirty = true
			k.hq.push(hEvent{at: c.at, seq: c.seq, arg: c.gen, h: c})
			c = nx
		}
	} else {
		for c := head; c != nil; {
			nx := c.next
			c.prev, c.next = nil, nil
			w.count--
			if !w.insert(c) {
				panic("sim: timer cascade out of wheel range")
			}
			c = nx
		}
	}
	if w.count == 0 {
		w.nextLB = MaxTime
		return
	}
	t0, _ = w.nextOccupied()
	w.nextLB = Time(t0 * wheelTickPs)
}

// minAt returns the exact earliest armed deadline across the wheel's
// slots, MaxTime when none are linked. Per level the first occupied slot's
// window precedes every later slot's, so only that slot's list is walked.
func (w *timerWheel) minAt() Time {
	min := MaxTime
	for l := 0; l < wheelLevels; l++ {
		if w.occ[l] == 0 {
			continue
		}
		sh := uint(wheelSlotBits * l)
		curSlot := w.cur >> sh
		off := bits.TrailingZeros64(bits.RotateLeft64(w.occ[l], -int(curSlot&wheelSlotMask)))
		slot := int((curSlot + int64(off)) & wheelSlotMask)
		for c := w.slots[l][slot]; c != nil; c = c.next {
			if c.at < min {
				min = c.at
			}
		}
	}
	return min
}

// next returns the exact earliest armed deadline, recomputing the cached
// value when a cancellation or collection invalidated it.
func (w *timerWheel) next() Time {
	if w.count == 0 {
		return MaxTime
	}
	if w.nextDirty {
		w.nextAt = w.minAt()
		w.nextDirty = false
	}
	return w.nextAt
}

// ArmTimer schedules h.Handle(arg) at d after the current instant and
// returns an id for CancelTimer. It is the cancellable analog of AfterH
// and draws from the same seq counter, so a wheel timer fires in exactly
// the (time, seq) position the equivalent AfterH event would — arming and
// cancelling are O(1) and allocation-free on a warmed kernel. Negative d
// panics; a nil handler panics at arm rather than at fire.
func (k *Kernel) ArmTimer(d Duration, h Handler, arg uint64) TimerID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	if h == nil {
		panic("sim: ArmTimer with nil handler")
	}
	w := &k.tw
	if w.count == 0 {
		// Empty wheel: the cursor is free to jump to the present, keeping
		// the full span ahead of now regardless of how far the last
		// collection left it behind.
		w.cur = wheelTick(k.now)
	}
	at := k.now.Add(d)
	k.seq++
	c := w.alloc()
	c.at = at
	c.seq = k.seq
	c.arg = arg
	c.h = h
	w.armed++
	if !w.insert(c) {
		// Beyond the top level's window: fall back to the heap. The cell
		// still rides along as the Handler so the timer stays cancellable
		// (lazily — the heap entry fires as a generation-checked no-op).
		w.fallback++
		c.lvl = cellPending
		w.pendingHeap++
		if at == k.now {
			k.iq = append(k.iq, ringEvent{seq: c.seq, arg: c.gen, h: c})
		} else {
			k.hq.push(hEvent{at: at, seq: c.seq, arg: c.gen, h: c})
		}
	}
	return TimerID{c: c, gen: c.gen}
}

// CancelTimer cancels a pending timer in O(1) and reports whether it was
// still pending. Cancelling the zero TimerID, a fired timer, or an already
// cancelled timer is a safe no-op — the generation check rejects stale ids
// even after the underlying cell has been recycled by a later arm.
func (k *Kernel) CancelTimer(id TimerID) bool {
	c := id.c
	if c == nil || c.gen != id.gen {
		return false
	}
	w := &k.tw
	if c.w != w {
		panic("sim: CancelTimer on a foreign kernel's timer")
	}
	if c.lvl >= 0 {
		w.unlink(c)
		if !w.nextDirty && c.at == w.nextAt {
			w.nextDirty = true
		}
	}
	// Collected or fallback cells stay in the heap/ring and fire as
	// generation-checked no-ops; the release below orphans them.
	w.cancelled++
	w.release(c)
	return true
}

// TimerStats returns wheel activity counters.
func (k *Kernel) TimerStats() TimerStats {
	w := &k.tw
	return TimerStats{
		Armed:     w.armed,
		Cancelled: w.cancelled,
		Fired:     w.fired,
		Fallback:  w.fallback,
		Pending:   w.count + w.pendingHeap,
	}
}

// collectTimers moves every armed wheel timer that could precede the next
// dispatch candidate into the handler heap, so step's three-way merge sees
// it. The cursor only ever advances to slots that are genuinely due, which
// keeps it at or behind tick(now) at every dispatch and makes heap
// fallback on arm impossible within the wheel's span.
func (k *Kernel) collectTimers(limit Time) {
	w := &k.tw
	for w.count > 0 {
		c := limit
		if k.iqHead < len(k.iq) && k.now < c {
			c = k.now
		}
		if len(k.fq) > 0 && k.fq[0].at < c {
			c = k.fq[0].at
		}
		if len(k.hq) > 0 && k.hq[0].at < c {
			c = k.hq[0].at
		}
		if w.nextLB > c {
			return
		}
		w.collectEarliest(k, c)
	}
}
