package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKernelOrdersByTime(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if k.Now() != 30 {
		t.Fatalf("final time = %v, want 30", k.Now())
	}
}

func TestKernelFIFOAtSameInstant(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO at %d: got %d", i, v)
		}
	}
}

func TestKernelAfterAndPost(t *testing.T) {
	k := NewKernel()
	var trace []string
	k.After(100, func() {
		trace = append(trace, "outer")
		k.Post(func() { trace = append(trace, "post") })
		k.After(0, func() { trace = append(trace, "after0") })
	})
	k.Run()
	if k.Now() != 100 {
		t.Fatalf("now = %v, want 100", k.Now())
	}
	want := []string{"outer", "post", "after0"}
	for i, w := range want {
		if trace[i] != w {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestRunUntilAdvancesClockToLimit(t *testing.T) {
	k := NewKernel()
	fired := false
	k.At(1000, func() { fired = true })
	end := k.RunUntil(500)
	if fired {
		t.Fatal("event beyond limit fired")
	}
	if end != 500 || k.Now() != 500 {
		t.Fatalf("clock = %v, want 500", end)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.Run()
	if !fired || k.Now() != 1000 {
		t.Fatalf("resume failed: fired=%v now=%v", fired, k.Now())
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(Time(i), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Stop", count)
	}
	if k.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", k.Pending())
	}
}

func TestTicker(t *testing.T) {
	k := NewKernel()
	var at []Time
	k.Ticker(10, func() bool {
		at = append(at, k.Now())
		return len(at) < 5
	})
	k.Run()
	if len(at) != 5 {
		t.Fatalf("ticks = %d, want 5", len(at))
	}
	for i, ts := range at {
		if ts != Time(10*(i+1)) {
			t.Fatalf("tick %d at %v, want %v", i, ts, 10*(i+1))
		}
	}
}

func TestWaitGroup(t *testing.T) {
	var w WaitGroup
	done := 0
	w.Add(3)
	w.OnZero(func() { done++ })
	w.Done()
	w.Done()
	if done != 0 {
		t.Fatal("fired early")
	}
	w.Done()
	if done != 1 {
		t.Fatalf("done = %d, want 1", done)
	}
	// Zero-count registration fires immediately.
	var w2 WaitGroup
	fired := false
	w2.OnZero(func() { fired = true })
	if !fired {
		t.Fatal("OnZero at zero count did not fire")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	var w WaitGroup
	defer func() {
		if recover() == nil {
			t.Error("Done below zero did not panic")
		}
	}()
	w.Done()
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{500, "500ps"},
		{2 * Nanosecond, "2ns"},
		{3 * Microsecond, "3us"},
		{4 * Millisecond, "4ms"},
		{5 * Second, "5s"},
		{-2 * Nanosecond, "-2ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	tm := Time(2_500_000) // 2.5us
	if tm.Micros() != 2.5 {
		t.Errorf("Micros = %v", tm.Micros())
	}
	if tm.Nanos() != 2500 {
		t.Errorf("Nanos = %v", tm.Nanos())
	}
	if d := FromStd(3 * time.Microsecond); d != 3*Microsecond {
		t.Errorf("FromStd = %v", d)
	}
	if got := (3 * Microsecond).Std(); got != 3*time.Microsecond {
		t.Errorf("Std = %v", got)
	}
	if got := (10 * Nanosecond).Scale(2.5); got != 25*Nanosecond {
		t.Errorf("Scale = %v", got)
	}
}

func TestPerSecond(t *testing.T) {
	if r := PerSecond(100, Second); r != 100 {
		t.Errorf("PerSecond = %v, want 100", r)
	}
	if r := PerSecond(100, 0); r != 0 {
		t.Errorf("PerSecond over 0 = %v, want 0", r)
	}
	if r := PerSecond(5, 500*Millisecond); r != 10 {
		t.Errorf("PerSecond = %v, want 10", r)
	}
}

// Property: regardless of the (time, payload) schedule, the kernel dispatches
// in non-decreasing time order and FIFO within equal times.
func TestKernelDispatchOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		k := NewKernel()
		type stamp struct {
			at  Time
			seq int
		}
		var got []stamp
		for i, r := range raw {
			at := Time(r % 64) // force many collisions
			i := i
			k.At(at, func() { got = append(got, stamp{at, i}) })
		}
		k.Run()
		if len(got) != len(raw) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
