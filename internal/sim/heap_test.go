package sim

import (
	"sort"
	"testing"
)

// mirror is a sort-based reference priority queue with the kernel's
// (at, seq) contract, used to cross-check the 4-ary heap.
type mirror []event

func (m *mirror) add(e event) { *m = append(*m, e) }

// min returns the index of the minimum pending event by (at, seq).
func (m mirror) min() int {
	best := 0
	for i := 1; i < len(m); i++ {
		if m[i].before(m[best]) {
			best = i
		}
	}
	return best
}

func (m *mirror) remove(i int) {
	q := *m
	q[i] = q[len(q)-1]
	*m = q[:len(q)-1]
}

// TestHeapMatchesReference drives random schedule/dispatch interleavings —
// including events scheduled from inside running callbacks — and checks that
// every dispatch is exactly the (at, seq) minimum of a linear-scan reference
// holding the same pending set.
func TestHeapMatchesReference(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := NewRand(uint64(trial) + 1)
		k := NewKernel()
		var ref mirror
		scheduled, dispatched := 0, 0
		const totalEvents = 400

		var schedule func()
		schedule = func() {
			if scheduled >= totalEvents {
				return
			}
			scheduled++
			at := k.Now().Add(Duration(rng.Intn(64)))
			seq := k.seq + 1 // the kernel assigns this seq inside At
			fn := func() {
				i := ref.min()
				e := ref[i]
				if e.at != k.Now() || e.seq != seq {
					t.Fatalf("trial %d: dispatched (at=%v seq=%d), reference min (at=%v seq=%d)",
						trial, k.Now(), seq, e.at, e.seq)
				}
				ref.remove(i)
				dispatched++
				// Occasionally fan out more work from inside a callback to
				// exercise schedule-during-dispatch interleavings.
				for n := rng.Intn(3); n > 0; n-- {
					schedule()
				}
			}
			ref.add(event{at: at, seq: seq})
			k.At(at, fn)
		}
		for i := 0; i < 32; i++ {
			schedule()
		}
		k.Run()
		if dispatched != scheduled {
			t.Fatalf("trial %d: dispatched %d of %d events", trial, dispatched, scheduled)
		}
		if len(ref) != 0 {
			t.Fatalf("trial %d: %d reference events never dispatched", trial, len(ref))
		}
	}
}

// TestHeapPushPopSortedOrder drains a randomly filled heap directly and
// compares against a stable sort.
func TestHeapPushPopSortedOrder(t *testing.T) {
	rng := NewRand(7)
	var h eventHeap
	var want []event
	for i := 0; i < 2000; i++ {
		e := event{at: Time(rng.Intn(100)), seq: uint64(i)}
		h.push(e)
		want = append(want, e)
	}
	sort.Slice(want, func(i, j int) bool { return want[i].before(want[j]) })
	for i, w := range want {
		got := h.pop()
		if got.at != w.at || got.seq != w.seq {
			t.Fatalf("pop %d = (at=%v seq=%d), want (at=%v seq=%d)", i, got.at, got.seq, w.at, w.seq)
		}
	}
	if len(h) != 0 {
		t.Fatalf("heap not drained: %d left", len(h))
	}
}

// handlerProbe records dispatch order for TestDualHeapMergeOrder.
type handlerProbe struct {
	order *[]uint64
}

func (p *handlerProbe) Handle(arg uint64) { *p.order = append(*p.order, arg) }

// TestDualHeapMergeOrder pins the merge contract between the closure heap
// and the handler heap: events interleave strictly by (at, seq) no matter
// which heap holds them, including closures and handlers at equal instants.
func TestDualHeapMergeOrder(t *testing.T) {
	rng := NewRand(11)
	k := NewKernel()
	var order []uint64
	probe := &handlerProbe{order: &order}
	const total = 500
	want := make([]uint64, 0, total)
	type sched struct {
		at  Time
		id  uint64
		use bool // handler heap
	}
	var plan []sched
	for i := 0; i < total; i++ {
		plan = append(plan, sched{at: Time(rng.Intn(40)), id: uint64(i), use: rng.Intn(2) == 0})
	}
	// The kernel assigns seq in scheduling order, so a stable sort by time
	// of the plan is the required dispatch order.
	for _, s := range plan {
		if s.use {
			k.AtH(s.at, probe, s.id)
		} else {
			id := s.id
			k.At(s.at, func() { order = append(order, id) })
		}
	}
	for at := Time(0); at < 40; at++ {
		for _, s := range plan {
			if s.at == at {
				want = append(want, s.id)
			}
		}
	}
	k.Run()
	if len(order) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch %d = event %d, want %d", i, order[i], want[i])
		}
	}
}

// TestSchedulePathZeroAlloc pins the tentpole guarantee: once the heap has
// grown to its working depth, scheduling and dispatching allocate nothing.
func TestSchedulePathZeroAlloc(t *testing.T) {
	k := NewKernel()
	// Pre-grow the heap's backing array well past the working set.
	for i := 0; i < 1024; i++ {
		k.At(Time(i), func() {})
	}
	k.Run()
	fn := func() {}
	allocs := testing.AllocsPerRun(1000, func() {
		k.After(Nanosecond, fn)
		k.RunUntil(k.Now().Add(Nanosecond))
	})
	if allocs != 0 {
		t.Fatalf("schedule/dispatch cycle allocates %.1f per op, want 0", allocs)
	}
}
