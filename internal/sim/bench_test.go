package sim

import "testing"

// BenchmarkKernelEventThroughput measures raw event dispatch rate — the
// ceiling on every simulation in the repository. Steady-state scheduling
// must report 0 allocs/op (heap growth is amortized away by the warm slice).
func BenchmarkKernelEventThroughput(b *testing.B) {
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(Nanosecond, tick)
		}
	}
	k.After(Nanosecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkKernelHeapChurn measures scheduling with a deep pending queue.
func BenchmarkKernelHeapChurn(b *testing.B) {
	k := NewKernel()
	const depth = 1024
	for i := 0; i < depth; i++ {
		k.At(Time(1_000_000+i), func() {})
	}
	done := 0
	var tick func()
	tick = func() {
		done++
		if done < b.N {
			k.After(1, tick)
		}
	}
	k.At(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkCreditPoolCycle measures acquire/release round trips.
func BenchmarkCreditPoolCycle(b *testing.B) {
	k := NewKernel()
	p := NewCreditPool(k, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.TryAcquire() {
			b.Fatal("pool empty")
		}
		p.Release()
	}
}

// BenchmarkRandUint64 measures the seeded generator.
func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

// benchSink absorbs timer firings in the wheel benchmarks.
type benchSink struct{ fired uint64 }

func (s *benchSink) Handle(uint64) { s.fired++ }

// BenchmarkTimerWheelArmCancel measures the cancellable-timer fast path:
// arm a deadline on the wheel and cancel it before it fires — the exact
// lifecycle of the ARQ/deadline population on every healthy transaction.
// Both operations are O(1) and the warmed cycle must report 0 allocs/op.
func BenchmarkTimerWheelArmCancel(b *testing.B) {
	k := NewKernel()
	s := &benchSink{}
	for i := 0; i < 256; i++ { // warm the cell pool
		k.CancelTimer(k.ArmTimer(Duration(i+1)*Microsecond, s, 0))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.CancelTimer(k.ArmTimer(100*Microsecond, s, 0))
	}
}

// BenchmarkTimerWheelFire measures timers that run to expiry: arm,
// cascade through the wheel, collect into the dispatch heap, fire.
func BenchmarkTimerWheelFire(b *testing.B) {
	k := NewKernel()
	s := &benchSink{}
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.ArmTimer(10*Microsecond, s, 0)
			k.After(10*Microsecond, tick)
		}
	}
	k.ArmTimer(10*Microsecond, s, 0)
	k.After(10*Microsecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
	if s.fired != uint64(b.N) {
		b.Fatalf("fired %d of %d", s.fired, b.N)
	}
}
