package sim

import "testing"

// BenchmarkKernelEventThroughput measures raw event dispatch rate — the
// ceiling on every simulation in the repository. Steady-state scheduling
// must report 0 allocs/op (heap growth is amortized away by the warm slice).
func BenchmarkKernelEventThroughput(b *testing.B) {
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(Nanosecond, tick)
		}
	}
	k.After(Nanosecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkKernelHeapChurn measures scheduling with a deep pending queue.
func BenchmarkKernelHeapChurn(b *testing.B) {
	k := NewKernel()
	const depth = 1024
	for i := 0; i < depth; i++ {
		k.At(Time(1_000_000+i), func() {})
	}
	done := 0
	var tick func()
	tick = func() {
		done++
		if done < b.N {
			k.After(1, tick)
		}
	}
	k.At(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkCreditPoolCycle measures acquire/release round trips.
func BenchmarkCreditPoolCycle(b *testing.B) {
	k := NewKernel()
	p := NewCreditPool(k, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.TryAcquire() {
			b.Fatal("pool empty")
		}
		p.Release()
	}
}

// BenchmarkRandUint64 measures the seeded generator.
func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
