package sim

import (
	"fmt"
)

// An event is a callback scheduled at an instant. seq breaks ties so that
// events at equal timestamps run in scheduling order.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// before is the dispatch order: earliest instant first, scheduling order
// within an instant.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by (at, seq). It is
// monomorphic on purpose: container/heap funnels every Push/Pop through an
// interface{}, boxing one event per scheduled callback, which at the
// simulator's event rates dominates the allocation profile. Storing events
// by value in a flat slice makes the schedule path allocation-free beyond
// slice growth, and the 4-ary shape halves the tree depth versus binary,
// trading a wider (cache-line-friendly) sibling scan for fewer levels per
// sift.
type eventHeap []event

// push inserts e, sifting it up from the tail.
func (h *eventHeap) push(e event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
	*h = q
}

// pop removes and returns the minimum. It must not be called on an empty
// heap.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{} // release the callback for GC
	q = q[:n]
	if n > 0 {
		// Sift last down from the root, moving the hole instead of swapping.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if q[j].before(q[m]) {
					m = j
				}
			}
			if !q[m].before(last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	*h = q
	return top
}

// Kernel is a single-threaded discrete-event scheduler. The zero value is
// not usable; create kernels with NewKernel.
type Kernel struct {
	pq        eventHeap
	now       Time
	seq       uint64
	processed uint64
	running   bool
	stopped   bool
}

// NewKernel returns a kernel whose clock starts at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports how many events are scheduled but not yet dispatched.
func (k *Kernel) Pending() int { return len(k.pq) }

// Processed reports the total number of events dispatched so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// At schedules fn to run at the absolute instant t. Scheduling into the past
// panics: it indicates a model bug that would silently corrupt causality.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	k.pq.push(event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current instant. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now.Add(d), fn)
}

// Post schedules fn at the current instant, after all events already
// scheduled for this instant.
func (k *Kernel) Post(fn func()) { k.At(k.now, fn) }

// Stop makes the currently executing Run/RunUntil return after the current
// event completes. Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// step dispatches the earliest event. It reports false when no events remain.
func (k *Kernel) step(limit Time) bool {
	if len(k.pq) == 0 {
		return false
	}
	if k.pq[0].at > limit {
		return false
	}
	e := k.pq.pop()
	k.now = e.at
	k.processed++
	e.fn()
	return true
}

// Run dispatches events until the queue drains or Stop is called, and
// returns the final simulated time.
func (k *Kernel) Run() Time { return k.RunUntil(MaxTime) }

// RunUntil dispatches events with timestamps <= limit, advances the clock to
// limit if it was reached with events still pending, and returns the final
// simulated time. Reentrant calls panic.
func (k *Kernel) RunUntil(limit Time) Time {
	if k.running {
		panic("sim: Kernel.Run called reentrantly")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for !k.stopped && k.step(limit) {
	}
	if !k.stopped && limit != MaxTime && k.now < limit {
		k.now = limit
	}
	return k.now
}

// Ticker invokes fn every period until fn returns false. The first firing is
// one period from now.
func (k *Kernel) Ticker(period Duration, fn func() bool) {
	if period <= 0 {
		panic("sim: Ticker period must be positive")
	}
	var tick func()
	tick = func() {
		if fn() {
			k.After(period, tick)
		}
	}
	k.After(period, tick)
}

// WaitGroup counts outstanding simulated activities and runs a completion
// callback when the count reaches zero. It mirrors sync.WaitGroup but is
// kernel-local and single-threaded.
type WaitGroup struct {
	n    int
	done func()
}

// Add increments the count by delta.
func (w *WaitGroup) Add(delta int) { w.n += delta }

// Done decrements the count; when it reaches zero the completion callback
// fires (once). Going negative panics.
func (w *WaitGroup) Done() {
	w.n--
	if w.n < 0 {
		panic("sim: WaitGroup count below zero")
	}
	if w.n == 0 && w.done != nil {
		fn := w.done
		w.done = nil
		fn()
	}
}

// OnZero registers the completion callback. If the count is already zero the
// callback fires immediately.
func (w *WaitGroup) OnZero(fn func()) {
	if w.n == 0 {
		fn()
		return
	}
	w.done = fn
}
