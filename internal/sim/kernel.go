package sim

import (
	"fmt"
)

// Handler is the closure-free event callee: components that schedule on
// every packet hop implement Handle and are dispatched with AtH/AfterH/
// PostH. Scheduling a method value (k.At(t, p.fire)) or a capturing func
// literal heap-allocates a closure per event; converting an existing
// object to a Handler interface value does not, so the steady-state
// datapath can schedule without touching the allocator. arg is an opaque
// payload handed back at dispatch — callees that need more context than
// one word carry it in the handler object itself (typically a free-listed
// continuation struct reused across dispatches).
type Handler interface {
	Handle(arg uint64)
}

// An event is a func() closure scheduled at an instant. seq breaks ties so
// that events at equal timestamps run in scheduling order.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// before is the dispatch order: earliest instant first, scheduling order
// within an instant.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// An hEvent is a Handler/arg pair scheduled at an instant — the
// closure-free twin of event, kept as a separate element type (and heap)
// so that adding the handler fields does not widen every closure event:
// sift cost is proportional to element size and pointer-field count
// (write barriers), and the closure heap carries the bulk of the
// kernel-microbenchmark load.
type hEvent struct {
	at  Time
	seq uint64
	arg uint64
	h   Handler
}

func (e hEvent) before(o hEvent) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by (at, seq). It is
// monomorphic on purpose — hand-specialized per element type rather than
// written once with generics, because Go's gcshape stenciling turns the
// per-sift before() calls into dictionary-indirect calls, and no
// container/heap because interface funneling would box one event per
// scheduled callback, which at the simulator's event rates dominates the
// allocation profile. Storing events by value in a flat slice makes the
// schedule path allocation-free beyond slice growth, and the 4-ary shape
// halves the tree depth versus binary, trading a wider (cache-line-friendly)
// sibling scan for fewer levels per sift. hEventHeap below mirrors this
// code for handler events; keep the two in sync.
type eventHeap []event

// push inserts e, sifting it up from the tail.
func (h *eventHeap) push(e event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
	*h = q
}

// pop removes and returns the minimum. It must not be called on an empty
// heap.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{} // release the callback for GC
	q = q[:n]
	if n > 0 {
		// Sift last down from the root, moving the hole instead of swapping.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if q[j].before(q[m]) {
					m = j
				}
			}
			if !q[m].before(last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	*h = q
	return top
}

// hEventHeap is the handler-event twin of eventHeap (same 4-ary layout and
// hole-based sift); see the comment there for why the code is duplicated
// rather than shared.
type hEventHeap []hEvent

func (h *hEventHeap) push(e hEvent) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
	*h = q
}

func (h *hEventHeap) pop() hEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = hEvent{} // release the handler for GC
	q = q[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if q[j].before(q[m]) {
					m = j
				}
			}
			if !q[m].before(last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	*h = q
	return top
}

// Kernel is a single-threaded discrete-event scheduler. The zero value is
// not usable; create kernels with NewKernel.
// A ringEvent is an event scheduled at the kernel's current instant,
// queued in the immediate ring instead of a heap: a key equal to the
// running minimum would sift past every future event, so same-instant
// scheduling — the datapath's kick/Post chains — would pay the full heap
// depth. The ring appends in seq order (seq is monotonic), making it a
// FIFO that the dispatcher merges with the heap tops by (at, seq).
type ringEvent struct {
	seq uint64
	arg uint64
	fn  func()
	h   Handler
}

type Kernel struct {
	fq        eventHeap  // closure events
	hq        hEventHeap // handler events
	iq        []ringEvent
	iqHead    int
	now       Time
	seq       uint64
	frontSeq  uint64
	processed uint64
	running   bool
	stopped   bool
	tw        timerWheel // cancellable timers (ArmTimer/CancelTimer)
}

// normalBand is the first seq value of the ordinary At/AtH band. Seq
// values below it belong to the front band (AtHFront), so a front event
// always precedes same-instant normal events in the (at, seq) order.
const normalBand = uint64(1) << 62

// NewKernel returns a kernel whose clock starts at time zero.
func NewKernel() *Kernel {
	k := &Kernel{seq: normalBand}
	k.tw.nextLB = MaxTime
	k.tw.nextAt = MaxTime
	return k
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports how many events are scheduled but not yet dispatched,
// including timers still waiting in the wheel (collected timers are
// already in the handler heap and counted there).
func (k *Kernel) Pending() int {
	return len(k.fq) + len(k.hq) + len(k.iq) - k.iqHead + k.tw.count
}

// Processed reports the total number of events dispatched so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// At schedules fn to run at the absolute instant t. Scheduling into the past
// panics: it indicates a model bug that would silently corrupt causality.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	if t == k.now {
		k.iq = append(k.iq, ringEvent{seq: k.seq, fn: fn})
		return
	}
	k.fq.push(event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current instant. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now.Add(d), fn)
}

// Post schedules fn at the current instant, after all events already
// scheduled for this instant.
func (k *Kernel) Post(fn func()) { k.At(k.now, fn) }

// AtH schedules h.Handle(arg) at the absolute instant t. It is the
// closure-free analog of At: the event carries the pre-existing handler
// object instead of a freshly allocated func value, so steady-state
// callers allocate nothing per schedule. Ordering is identical to At —
// both draw from the same seq counter.
func (k *Kernel) AtH(t Time, h Handler, arg uint64) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	if t == k.now {
		k.iq = append(k.iq, ringEvent{seq: k.seq, arg: arg, h: h})
		return
	}
	k.hq.push(hEvent{at: t, seq: k.seq, arg: arg, h: h})
}

// AtHFront schedules h.Handle(arg) at the absolute instant t ahead of
// every same-instant event the normal At/AtH band has scheduled or will
// schedule. The sharded runtime injects cross-shard deliveries through
// it: in a single-kernel run a cable delivery event is inserted at
// serialization end — at least one propagation delay before it fires —
// so it precedes any same-instant work the destination schedules while
// the beat is still in flight, and the front band reproduces that
// insertion point. Front events keep their own insertion order; unlike
// AtH, a front event at the current instant still goes through the heap
// so it can overtake the immediate ring.
func (k *Kernel) AtHFront(t Time, h Handler, arg uint64) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.frontSeq++
	if k.frontSeq >= normalBand {
		panic("sim: front-band seq exhausted")
	}
	k.hq.push(hEvent{at: t, seq: k.frontSeq, arg: arg, h: h})
}

// AfterH schedules h.Handle(arg) d after the current instant.
func (k *Kernel) AfterH(d Duration, h Handler, arg uint64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.AtH(k.now.Add(d), h, arg)
}

// PostH schedules h.Handle(arg) at the current instant, after all events
// already scheduled for this instant.
func (k *Kernel) PostH(h Handler, arg uint64) { k.AtH(k.now, h, arg) }

// Stop makes the currently executing Run/RunUntil return after the current
// event completes. Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// step dispatches the earliest event across the two heaps and the immediate
// ring. It reports false when no dispatchable events remain. seq values are
// globally unique, so the (at, seq) order is total and the merge never ties;
// ring entries all sit at the current instant, so a heap top precedes the
// ring head only when it shares that instant with a smaller seq.
func (k *Kernel) step(limit Time) bool {
	if k.tw.count > 0 {
		k.collectTimers(limit)
	}
	nf, nh := len(k.fq), len(k.hq)
	fromF := nf > 0 && (nh == 0 ||
		k.fq[0].at < k.hq[0].at ||
		(k.fq[0].at == k.hq[0].at && k.fq[0].seq < k.hq[0].seq))
	if k.iqHead < len(k.iq) {
		heapFirst := false
		if fromF {
			heapFirst = k.fq[0].at == k.now && k.fq[0].seq < k.iq[k.iqHead].seq
		} else if nh > 0 {
			heapFirst = k.hq[0].at == k.now && k.hq[0].seq < k.iq[k.iqHead].seq
		}
		if !heapFirst {
			if k.now > limit {
				return false
			}
			e := k.iq[k.iqHead]
			k.iq[k.iqHead] = ringEvent{}
			k.iqHead++
			if k.iqHead == len(k.iq) { // drained: reuse the backing array
				k.iq = k.iq[:0]
				k.iqHead = 0
			}
			k.processed++
			if e.h != nil {
				e.h.Handle(e.arg)
			} else {
				e.fn()
			}
			return true
		}
	}
	if fromF {
		if k.fq[0].at > limit {
			return false
		}
		e := k.fq.pop()
		k.now = e.at
		k.processed++
		e.fn()
		return true
	}
	if nh == 0 {
		return false
	}
	if k.hq[0].at > limit {
		return false
	}
	e := k.hq.pop()
	k.now = e.at
	k.processed++
	e.h.Handle(e.arg)
	return true
}

// NextEventTime returns the timestamp of the earliest pending event,
// including timers still waiting in the wheel (their exact deadlines, not
// slot bounds — the sharded runtime's conservative horizon and AdvanceTo's
// skip check both need the true minimum). ok is false when nothing is
// scheduled. Immediate-ring events sit at the current instant by
// construction.
func (k *Kernel) NextEventTime() (Time, bool) {
	if k.iqHead < len(k.iq) {
		return k.now, true
	}
	next := MaxTime
	found := false
	if len(k.fq) > 0 {
		next = k.fq[0].at
		found = true
	}
	if len(k.hq) > 0 && (!found || k.hq[0].at < next) {
		next = k.hq[0].at
		found = true
	}
	if k.tw.count > 0 {
		if wn := k.tw.next(); !found || wn < next {
			next = wn
			found = true
		}
	}
	return next, found
}

// RunBelow dispatches every event with timestamp strictly before horizon and
// returns the final simulated time. Unlike RunUntil it never advances the
// clock past the last dispatched event, so a conservative-PDES coordinator
// can resume the kernel with a later horizon without losing the frontier.
func (k *Kernel) RunBelow(horizon Time) Time {
	if k.running {
		panic("sim: Kernel.Run called reentrantly")
	}
	if horizon <= 0 {
		return k.now
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for !k.stopped && k.step(horizon-1) {
	}
	return k.now
}

// AdvanceTo moves the clock forward to t without dispatching anything.
// Events scheduled before t must already have been dispatched (RunBelow(t));
// skipping one would corrupt causality, so that panics. Events at exactly t
// stay pending and dispatch when the kernel next runs.
func (k *Kernel) AdvanceTo(t Time) {
	if k.running {
		panic("sim: AdvanceTo during Run")
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) before now %v", t, k.now))
	}
	if next, ok := k.NextEventTime(); ok && next < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) would skip event at %v", t, next))
	}
	k.now = t
}

// Run dispatches events until the queue drains or Stop is called, and
// returns the final simulated time.
func (k *Kernel) Run() Time { return k.RunUntil(MaxTime) }

// RunUntil dispatches events with timestamps <= limit, advances the clock to
// limit if it was reached with events still pending, and returns the final
// simulated time. Reentrant calls panic.
func (k *Kernel) RunUntil(limit Time) Time {
	if k.running {
		panic("sim: Kernel.Run called reentrantly")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for !k.stopped && k.step(limit) {
	}
	if !k.stopped && limit != MaxTime && k.now < limit {
		k.now = limit
	}
	return k.now
}

// tickerState is the re-arming handler behind Ticker. Each firing draws a
// fresh seq at arm time, exactly as the closure-based Ticker's After chain
// did, so converting Ticker to the wheel preserves event order.
type tickerState struct {
	k      *Kernel
	period Duration
	fn     func() bool
}

func (t *tickerState) Handle(uint64) {
	if t.fn() {
		t.k.ArmTimer(t.period, t, 0)
	}
}

// Ticker invokes fn every period until fn returns false. The first firing is
// one period from now.
func (k *Kernel) Ticker(period Duration, fn func() bool) {
	if period <= 0 {
		panic("sim: Ticker period must be positive")
	}
	t := &tickerState{k: k, period: period, fn: fn}
	k.ArmTimer(period, t, 0)
}

// WaitGroup counts outstanding simulated activities and runs a completion
// callback when the count reaches zero. It mirrors sync.WaitGroup but is
// kernel-local and single-threaded.
type WaitGroup struct {
	n    int
	done func()
}

// Add increments the count by delta.
func (w *WaitGroup) Add(delta int) { w.n += delta }

// Done decrements the count; when it reaches zero the completion callback
// fires (once). Going negative panics.
func (w *WaitGroup) Done() {
	w.n--
	if w.n < 0 {
		panic("sim: WaitGroup count below zero")
	}
	if w.n == 0 && w.done != nil {
		fn := w.done
		w.done = nil
		fn()
	}
}

// OnZero registers the completion callback. If the count is already zero the
// callback fires immediately.
func (w *WaitGroup) OnZero(fn func()) {
	if w.n == 0 {
		fn()
		return
	}
	w.done = fn
}
