// Command delayvalidate reproduces the §III-B validation of the delay
// injection framework: it sweeps PERIOD with STREAM, verifies the linear
// PERIOD-to-latency correlation, checks that the induced latency range
// covers datacenter network latencies, and reports the bandwidth-delay
// product's constancy.
//
// Usage:
//
//	delayvalidate [-periods 1,2,5,...] [-elements N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"thymesim/internal/core"
)

func parsePeriods(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, err
		}
		if p < 1 {
			return nil, fmt.Errorf("period %d < 1", p)
		}
		out = append(out, p)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("delayvalidate: ")
	var (
		periodsFlag = flag.String("periods", "1,2,5,10,25,50,100,200,300", "comma-separated PERIOD sweep")
		elements    = flag.Int("elements", 0, "STREAM array elements (0 = default)")
	)
	flag.Parse()

	periods, err := parsePeriods(*periodsFlag)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.Default()
	if *elements > 0 {
		opts.StreamElements = *elements
	}

	v := opts.RunDelayValidation(periods)
	fmt.Printf("%-8s %12s %14s %10s\n", "PERIOD", "latency(us)", "bandwidth(GB/s)", "BDP(kB)")
	latS := v.Latency.Series[0]
	for i, pt := range latS.Points {
		bw := v.Bandwidth.Series[0].Points[i].Y
		bdp := v.BDP.Series[0].Points[i].Y
		fmt.Printf("%-8.0f %12.3f %14.4f %10.2f\n", pt.X, pt.Y, bw, bdp)
	}
	fmt.Printf("\nlinear fit: latency = %.4g us/PERIOD x PERIOD + %.4g us (r^2 = %.5f)\n",
		v.Slope, v.Intercept, v.R2)
	lo, hi, _ := v.BDP.Series[0].MinMaxY()
	fmt.Printf("BDP range: %.2f - %.2f kB (paper: ~16.5 kB, constant)\n", lo, hi)
	if v.R2 < 0.99 {
		fmt.Fprintln(os.Stderr, "WARNING: PERIOD-latency correlation below 0.99")
		os.Exit(1)
	}
}
