// Command characterize regenerates every table and figure of the paper's
// evaluation (§IV): delay-injection validation (Figs. 2-3), resilience
// (Fig. 4), Table I, application impact (Fig. 5), contention (Figs. 6-7),
// and the §V/§VII extension studies. Results are rendered to stdout and,
// with -out, written as CSV files.
//
// Usage:
//
//	characterize [-out dir] [-paper] [-j N] [-trace file] [-trace-sample N]
//	             [-serve addr] [-metrics-out file]
//	             [-cpuprofile file] [-memprofile file]
//	             [-experiment all|validation|resilience|table1|fig5|mcbn|mcln|pool|pool-contention|dists|qos|migration|interconnect|prefetch|recovery|chaos|schedule|breaker-recovery|breakdown]
//
// Sweep points fan out across -j worker goroutines (default: one per
// CPU). Every point owns its testbed and derives its randomness from
// -seed, so output is byte-identical at every -j setting.
//
// With -serve, a live run monitor answers /metrics (Prometheus text
// exposition), /healthz, /status (JSON run status + SLOs), /stream
// (NDJSON snapshots), and /events (flight-recorder dump) while the
// experiments execute. The metrics plane only observes: simulated
// results are identical with it on or off.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"slices"
	"strings"

	"thymesim/internal/core"
	"thymesim/internal/metricsplane"
	"thymesim/internal/metricsplane/monitor"
	"thymesim/internal/prof"
	"thymesim/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")
	var (
		outDir     = flag.String("out", "", "directory for CSV output (omit to skip)")
		paper      = flag.Bool("paper", false, "use the paper's full experiment sizes (slow)")
		experiment = flag.String("experiment", "all", "which experiment to run")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		jobs       = flag.Int("j", 0, "concurrent sweep points (0 = one per CPU); results are identical at any -j")
		shards     = flag.Int("shards", 0, "event-kernel shards per pool run (0/1 = single kernel); results are identical at any -shards")
		trace      = flag.String("trace", "", "Chrome trace-event JSON of the breakdown run's spans")
		traceSamp  = flag.Int("trace-sample", 1, "trace every Nth line fill in the breakdown sweep")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile (taken after the runs) to this file")
		mtxProfile = flag.String("mutexprofile", "", "write a mutex-contention profile of the runs to this file")
		blkProfile = flag.String("blockprofile", "", "write a goroutine-blocking profile (barrier stalls under -shards) to this file")
		serveAddr  = flag.String("serve", "", "serve the live run monitor (/metrics, /healthz, /status) on this address while experiments run")
		metricsOut = flag.String("metrics-out", "", "write the final metrics snapshot in Prometheus text format to this file (needs -serve)")
	)
	flag.Parse()

	opts := core.Default()
	if *paper {
		opts = core.Paper()
	}
	opts.Seed = *seed
	opts.Workers = *jobs
	opts.Shards = *shards
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}

	known := append([]string{"all"}, core.ExperimentNames()...)
	if !slices.Contains(known, *experiment) {
		log.Fatalf("unknown experiment %q (choose one of %s)", *experiment, strings.Join(known, "|"))
	}
	want := func(name string) bool { return *experiment == "all" || *experiment == name }

	var plane *metricsplane.Plane
	if *serveAddr != "" {
		plane = metricsplane.New()
		plane.SetSLO(metricsplane.DefaultSLOConfig())
		plane.SetRun("characterize -experiment " + *experiment)
		opts.Metrics = plane
		srv, err := monitor.Serve(*serveAddr, plane)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics: serving /metrics /healthz /status on http://%s\n", srv.Addr())
		planned := 0
		for _, e := range core.Experiments() {
			if want(e.Name) {
				planned++
			}
		}
		plane.SweepPlanned(planned)
	} else if *metricsOut != "" {
		log.Fatal("-metrics-out needs -serve (the metrics plane is off without it)")
	}

	rep := &core.Report{Options: opts}
	run := func(name string, fn func()) {
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		plane.SetPhase(name)
		fn()
		plane.SweepPointDone()
	}

	stopCPU, err := prof.Start(*cpuProfile)
	if err != nil {
		log.Fatal(err)
	}
	stopMutex, err := prof.StartMutex(*mtxProfile)
	if err != nil {
		log.Fatal(err)
	}
	stopBlock, err := prof.StartBlock(*blkProfile)
	if err != nil {
		log.Fatal(err)
	}

	if want("validation") {
		run("delay validation (Figs. 2-3)", func() { rep.Validation = opts.RunDelayValidation(core.DefaultPeriods()) })
	}
	if want("resilience") {
		run("resilience (Fig. 4)", func() { rep.Resilience = opts.RunResilience(core.ResiliencePeriods()) })
	}
	if want("table1") {
		run("Table I", func() { rep.Table1 = opts.RunTable1() })
	}
	if want("fig5") {
		run("application impact (Fig. 5)", func() { rep.Fig5 = opts.RunAppDegradation(core.Fig5Periods()) })
	}
	if want("mcbn") {
		run("borrower contention (Fig. 6)", func() { rep.MCBN = opts.RunMCBN([]int{1, 2, 4, 8}) })
	}
	if want("mcln") {
		run("lender contention (Fig. 7)", func() { rep.MCLN = opts.RunMCLN([]int{0, 1, 2, 4, 8}) })
	}
	if want("pool") {
		run("pooling ablation (§V)", func() { rep.Pool = opts.RunMCLNPool([]int{0, 1, 2, 4, 8}, 25e9) })
	}
	if want("pool-contention") {
		run("rack-scale pool contention (N borrowers × M lenders)", func() {
			rep.PoolCont = opts.RunPoolContention([]int{1, 2, 4, 8}, 4)
		})
	}
	if want("dists") {
		run("distribution injection (§VII)", func() { rep.Dists = opts.RunDistImpact(2 * sim.Microsecond) })
	}
	if want("qos") {
		run("QoS packet prioritization", func() { rep.QoS = opts.RunQoSPriority(100) })
	}
	if want("migration") {
		run("page migration", func() { rep.Migration = opts.RunMigration(100) })
	}
	if want("interconnect") {
		run("interconnect comparison (§V)", func() { rep.Xconnect = opts.RunInterconnectComparison() })
	}
	if want("prefetch") {
		run("prefetch ablation", func() { rep.Prefetch = opts.RunPrefetchAblation(250) })
	}
	if want("recovery") {
		run("link-fault recovery sweep", func() { rep.Recovery = opts.RunResilienceRecovery() })
	}
	if want("chaos") {
		run("chaos harness", func() {
			ccfg := core.DefaultChaosConfig()
			ccfg.Seed = opts.Seed
			rep.Chaos = opts.RunChaos(ccfg)
		})
	}
	if want("schedule") {
		run("scheduled chaos campaign (lender fault domains)", func() {
			scfg := core.DefaultChaosScheduleConfig()
			scfg.Seed = opts.Seed
			var err error
			rep.Schedule, err = opts.RunChaosSchedule(scfg)
			if err != nil {
				log.Fatal(err)
			}
		})
	}
	if want("breaker-recovery") {
		run("breaker recovery sweep (outage length vs re-close time)", func() {
			br, err := opts.RunBreakerRecovery()
			if err != nil {
				log.Fatal(err)
			}
			rep.BreakerRec = br
		})
	}
	if want("breakdown") {
		run("per-stage latency breakdown (Table I decomposition)", func() {
			rep.Breakdown = opts.RunLatencyBreakdown(core.DefaultPeriods(), *traceSamp)
		})
	}

	stopCPU()
	if err := stopMutex(); err != nil {
		log.Fatal(err)
	}
	if err := stopBlock(); err != nil {
		log.Fatal(err)
	}
	if err := prof.WriteHeap(*memProfile); err != nil {
		log.Fatal(err)
	}

	if err := rep.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *trace != "" {
		if rep.Breakdown == nil || rep.Breakdown.Tracer == nil {
			log.Fatal("-trace needs the breakdown experiment (use -experiment all or breakdown)")
		}
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.Breakdown.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "Chrome trace written to %s\n", *trace)
	}
	if *outDir != "" {
		if err := rep.WriteCSVDir(*outDir); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "CSV written to %s\n", *outDir)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := metricsplane.WritePrometheus(f, plane.Snapshot()); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics snapshot written to %s\n", *metricsOut)
	}
}
