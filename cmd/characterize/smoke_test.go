package main

// Metrics smoke test: build the real binary, run a pool-contention sweep
// with the live monitor enabled, and scrape the endpoints mid-run the way
// an operator (or Prometheus) would. This is the test `make metrics-smoke`
// and the CI metrics-smoke job run.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"thymesim/internal/metricsplane"
)

func TestMetricsServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and runs the full binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "characterize")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	snap := filepath.Join(dir, "metrics.prom")
	cmd := exec.Command(bin,
		"-experiment", "pool-contention", "-j", "4",
		"-serve", "127.0.0.1:0", "-metrics-out", snap)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The monitor announces its bound address on stderr before the
	// experiments start.
	addr := ""
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); i >= 0 {
			addr = strings.TrimSpace(line[i+len("http://"):])
			break
		}
	}
	if addr == "" {
		t.Fatalf("monitor address never announced (scan err %v)", sc.Err())
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	if body := get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %q", body)
	}

	// Scrape mid-run until fills appear, validating every exposition body
	// with the parser; counters must only grow between scrapes.
	lastFills := -1.0
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		body := get("/metrics")
		parsed, err := metricsplane.ParseExposition(body)
		if err != nil {
			t.Fatalf("mid-run /metrics invalid: %v", err)
		}
		fills, _ := parsed.Value("thymesim_fill_reads_total", map[string]string{"node": "0"})
		if fills < lastFills {
			t.Fatalf("fill counter went backwards: %v -> %v", lastFills, fills)
		}
		lastFills = fills
		if fills > 0 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if lastFills <= 0 {
		t.Fatal("no fills observed via /metrics while the sweep ran")
	}

	var st metricsplane.RunStatus
	if err := json.Unmarshal([]byte(get("/status")), &st); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if !strings.Contains(st.Run, "pool-contention") || st.SweepPlanned != 1 {
		t.Fatalf("/status = %+v", st)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("characterize exited: %v", err)
	}

	// The -metrics-out snapshot must itself be valid exposition and agree
	// with what the live endpoint reported.
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	parsed, err := metricsplane.ParseExposition(string(data))
	if err != nil {
		t.Fatalf("final snapshot invalid: %v", err)
	}
	final, ok := parsed.Value("thymesim_fill_reads_total", map[string]string{"node": "0"})
	if !ok || final < lastFills {
		t.Fatalf("snapshot fills %v (ok=%v), mid-run saw %v", final, ok, lastFills)
	}
	if typ := parsed.Types["thymesim_fill_latency_us"]; typ != "histogram" {
		t.Fatalf("fill latency TYPE = %q, want histogram", typ)
	}
}
