// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON array of benchmark records, one per benchmark line:
//
//	[{"pkg": "thymesim/internal/sim", "name": "BenchmarkKernelEventThroughput",
//	  "iterations": 34730608, "ns_per_op": 29.3, "bytes_per_op": 0,
//	  "allocs_per_op": 0}, ...]
//
// It is the bridge between `make bench` and the BENCH_N.json artifacts CI
// uploads, so benchmark history stays machine-diffable across PRs.
//
// With -baseline, the run is compared against a previous benchjson output:
// per-benchmark deltas are printed to stderr, and with -gate the command
// exits non-zero when any benchmark regresses more than -ns-tolerance in
// ns/op or by even one alloc/op — the allocation-regression gate CI runs
// against the committed baseline.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson [-out file]
//	    [-baseline BENCH_N.json] [-gate] [-ns-tolerance 0.20]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result.
type Record struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "previous benchjson output to diff against")
	gate := flag.Bool("gate", false, "exit non-zero when the -baseline diff shows a regression")
	nsTol := flag.Float64("ns-tolerance", 0.20, "ns/op regression fraction tolerated before gating")
	flag.Parse()

	records, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(records) == 0 {
		log.Fatal("no benchmark lines found on stdin (did the bench run fail?)")
	}
	enc, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d benchmarks to %s\n", len(records), *out)
	}

	if *baseline == "" {
		return
	}
	base, err := loadRecords(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	lines, regressions := diff(records, base, *nsTol)
	for _, l := range lines {
		fmt.Fprintln(os.Stderr, l)
	}
	if len(regressions) == 0 {
		fmt.Fprintf(os.Stderr, "no regressions vs %s\n", *baseline)
		return
	}
	if *gate {
		log.Fatalf("%d benchmark regression(s) vs %s", len(regressions), *baseline)
	}
	fmt.Fprintf(os.Stderr, "%d regression(s) vs %s (not gated; pass -gate to fail)\n", len(regressions), *baseline)
}

// loadRecords reads a previous benchjson output file.
func loadRecords(path string) ([]Record, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(buf, &recs); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return recs, nil
}

// diff compares a run against a baseline, returning one human-readable
// delta line per benchmark and the subset that count as regressions: ns/op
// grown beyond the tolerance fraction, or allocs/op grown at all (the
// pooled datapath's zero-steady-state-allocation guarantee means any new
// allocation is a leak in the making, not noise).
func diff(cur, base []Record, nsTol float64) (lines, regressions []string) {
	baseBy := make(map[string]Record, len(base))
	for _, r := range base {
		baseBy[r.Pkg+"."+r.Name] = r
	}
	seen := make(map[string]bool, len(cur))
	for _, r := range cur {
		key := r.Pkg + "." + r.Name
		seen[key] = true
		b, ok := baseBy[key]
		if !ok {
			lines = append(lines, fmt.Sprintf("%s: new benchmark (no baseline)", key))
			continue
		}
		nsFrac := 0.0
		if b.NsPerOp > 0 {
			nsFrac = (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		line := fmt.Sprintf("%s: ns/op %.4g -> %.4g (%+.1f%%), B/op %d -> %d, allocs/op %d -> %d",
			key, b.NsPerOp, r.NsPerOp, 100*nsFrac, b.BytesPerOp, r.BytesPerOp, b.AllocsPerOp, r.AllocsPerOp)
		switch {
		case r.AllocsPerOp > b.AllocsPerOp:
			line = "REGRESSION (allocs/op): " + line
			regressions = append(regressions, line)
		case nsFrac > nsTol:
			line = "REGRESSION (ns/op): " + line
			regressions = append(regressions, line)
		}
		lines = append(lines, line)
	}
	for _, r := range base {
		if key := r.Pkg + "." + r.Name; !seen[key] {
			lines = append(lines, fmt.Sprintf("%s: missing from this run (was %.4g ns/op)", key, r.NsPerOp))
		}
	}
	return lines, regressions
}

// parse scans go test output, tracking the current "pkg:" header and
// collecting Benchmark lines. Lines that do not match either are echoed to
// stderr so failures stay visible in CI logs.
func parse(sc *bufio.Scanner) ([]Record, error) {
	var records []Record
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		rec, err := parseBench(pkg, line)
		if err != nil {
			return nil, fmt.Errorf("%v (line: %q)", err, line)
		}
		records = append(records, rec)
	}
	return records, sc.Err()
}

// parseBench parses one benchmark line of the form
//
//	BenchmarkName-8   1234   56.7 ns/op   8 B/op   1 allocs/op
//
// The -N GOMAXPROCS suffix is stripped from the name so records compare
// across machines. B/op and allocs/op are optional (absent without
// -benchmem).
func parseBench(pkg, line string) (Record, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Record{}, fmt.Errorf("short benchmark line")
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad iteration count: %v", err)
	}
	rec := Record{Pkg: pkg, Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if rec.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Record{}, fmt.Errorf("bad ns/op: %v", err)
			}
		case "B/op":
			if rec.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Record{}, fmt.Errorf("bad B/op: %v", err)
			}
		case "allocs/op":
			if rec.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Record{}, fmt.Errorf("bad allocs/op: %v", err)
			}
		}
	}
	return rec, nil
}
