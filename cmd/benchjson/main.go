// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON array of benchmark records, one per benchmark line:
//
//	[{"pkg": "thymesim/internal/sim", "name": "BenchmarkKernelEventThroughput",
//	  "iterations": 34730608, "ns_per_op": 29.3, "bytes_per_op": 0,
//	  "allocs_per_op": 0}, ...]
//
// It is the bridge between `make bench` and the BENCH_N.json artifacts CI
// uploads, so benchmark history stays machine-diffable across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson [-out file]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result.
type Record struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	records, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(records) == 0 {
		log.Fatal("no benchmark lines found on stdin (did the bench run fail?)")
	}
	enc, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d benchmarks to %s\n", len(records), *out)
}

// parse scans go test output, tracking the current "pkg:" header and
// collecting Benchmark lines. Lines that do not match either are echoed to
// stderr so failures stay visible in CI logs.
func parse(sc *bufio.Scanner) ([]Record, error) {
	var records []Record
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		rec, err := parseBench(pkg, line)
		if err != nil {
			return nil, fmt.Errorf("%v (line: %q)", err, line)
		}
		records = append(records, rec)
	}
	return records, sc.Err()
}

// parseBench parses one benchmark line of the form
//
//	BenchmarkName-8   1234   56.7 ns/op   8 B/op   1 allocs/op
//
// The -N GOMAXPROCS suffix is stripped from the name so records compare
// across machines. B/op and allocs/op are optional (absent without
// -benchmem).
func parseBench(pkg, line string) (Record, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Record{}, fmt.Errorf("short benchmark line")
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad iteration count: %v", err)
	}
	rec := Record{Pkg: pkg, Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val, unit := f[i], f[i+1]
		switch unit {
		case "ns/op":
			if rec.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Record{}, fmt.Errorf("bad ns/op: %v", err)
			}
		case "B/op":
			if rec.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Record{}, fmt.Errorf("bad B/op: %v", err)
			}
		case "allocs/op":
			if rec.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Record{}, fmt.Errorf("bad allocs/op: %v", err)
			}
		}
	}
	return rec, nil
}
