package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: thymesim/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkKernelEventThroughput 	34730608	        29.30 ns/op	       0 B/op	       0 allocs/op
BenchmarkKernelHeapChurn-8     	33793118	        34.35 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	thymesim/internal/sim	3.676s
pkg: thymesim/internal/obs
BenchmarkDisabledSpan 	1000000000	         0.25 ns/op
PASS
`
	recs, err := parse(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	r := recs[0]
	if r.Pkg != "thymesim/internal/sim" || r.Name != "BenchmarkKernelEventThroughput" {
		t.Fatalf("record 0 = %+v", r)
	}
	if r.Iterations != 34730608 || r.NsPerOp != 29.30 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Fatalf("record 0 metrics = %+v", r)
	}
	// The -8 GOMAXPROCS suffix is stripped.
	if recs[1].Name != "BenchmarkKernelHeapChurn" {
		t.Fatalf("record 1 name = %q", recs[1].Name)
	}
	// -benchmem columns are optional.
	if recs[2].Pkg != "thymesim/internal/obs" || recs[2].NsPerOp != 0.25 || recs[2].AllocsPerOp != 0 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
}

func TestParseBenchRejectsGarbage(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkBroken abc 1 ns/op\n"))); err == nil {
		t.Fatal("bad iteration count accepted")
	}
}
