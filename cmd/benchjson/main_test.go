package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: thymesim/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkKernelEventThroughput 	34730608	        29.30 ns/op	       0 B/op	       0 allocs/op
BenchmarkKernelHeapChurn-8     	33793118	        34.35 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	thymesim/internal/sim	3.676s
pkg: thymesim/internal/obs
BenchmarkDisabledSpan 	1000000000	         0.25 ns/op
PASS
`
	recs, err := parse(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	r := recs[0]
	if r.Pkg != "thymesim/internal/sim" || r.Name != "BenchmarkKernelEventThroughput" {
		t.Fatalf("record 0 = %+v", r)
	}
	if r.Iterations != 34730608 || r.NsPerOp != 29.30 || r.BytesPerOp != 0 || r.AllocsPerOp != 0 {
		t.Fatalf("record 0 metrics = %+v", r)
	}
	// The -8 GOMAXPROCS suffix is stripped.
	if recs[1].Name != "BenchmarkKernelHeapChurn" {
		t.Fatalf("record 1 name = %q", recs[1].Name)
	}
	// -benchmem columns are optional.
	if recs[2].Pkg != "thymesim/internal/obs" || recs[2].NsPerOp != 0.25 || recs[2].AllocsPerOp != 0 {
		t.Fatalf("record 2 = %+v", recs[2])
	}
}

func TestParseBenchRejectsGarbage(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkBroken abc 1 ns/op\n"))); err == nil {
		t.Fatal("bad iteration count accepted")
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	base := []Record{
		{Pkg: "p", Name: "BenchmarkFast", NsPerOp: 100, AllocsPerOp: 0},
		{Pkg: "p", Name: "BenchmarkSlow", NsPerOp: 1000, AllocsPerOp: 5},
		{Pkg: "p", Name: "BenchmarkAlloc", NsPerOp: 100, AllocsPerOp: 2},
		{Pkg: "p", Name: "BenchmarkGone", NsPerOp: 50},
	}
	cur := []Record{
		{Pkg: "p", Name: "BenchmarkFast", NsPerOp: 115, AllocsPerOp: 0},  // +15%: within tolerance
		{Pkg: "p", Name: "BenchmarkSlow", NsPerOp: 1300, AllocsPerOp: 5}, // +30%: ns/op regression
		{Pkg: "p", Name: "BenchmarkAlloc", NsPerOp: 90, AllocsPerOp: 3},  // faster but +1 alloc: regression
		{Pkg: "p", Name: "BenchmarkNew", NsPerOp: 10},
	}
	lines, regressions := diff(cur, base, 0.20)
	if len(lines) != 5 { // 3 matched + 1 new + 1 missing
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	if len(regressions) != 2 {
		t.Fatalf("regressions = %d, want 2:\n%s", len(regressions), strings.Join(regressions, "\n"))
	}
	joined := strings.Join(regressions, "\n")
	for _, want := range []string{"REGRESSION (ns/op): p.BenchmarkSlow", "REGRESSION (allocs/op): p.BenchmarkAlloc"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("regressions missing %q:\n%s", want, joined)
		}
	}
	all := strings.Join(lines, "\n")
	for _, want := range []string{"p.BenchmarkNew: new benchmark", "p.BenchmarkGone: missing from this run"} {
		if !strings.Contains(all, want) {
			t.Fatalf("lines missing %q:\n%s", want, all)
		}
	}
}

func TestDiffCleanRun(t *testing.T) {
	base := []Record{{Pkg: "p", Name: "BenchmarkX", NsPerOp: 100, AllocsPerOp: 7}}
	cur := []Record{{Pkg: "p", Name: "BenchmarkX", NsPerOp: 80, AllocsPerOp: 3}}
	lines, regressions := diff(cur, base, 0.20)
	if len(regressions) != 0 {
		t.Fatalf("regressions on an improvement: %v", regressions)
	}
	if len(lines) != 1 || strings.Contains(lines[0], "REGRESSION") {
		t.Fatalf("lines = %v", lines)
	}
}
