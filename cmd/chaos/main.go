// Command chaos runs the link-fault chaos harness: every selected workload
// executes to completion under a seeded schedule of corruption, drop, and
// flap faults with ARQ retransmission and supervisor re-attach active, then
// a set of end-to-end invariants is audited (no leaked transactions,
// balanced byte accounting, crisp completion). Exit status is nonzero if
// any invariant fails, so the harness can gate CI.
//
// Usage:
//
//	chaos [-seed n] [-j n] [-shards n] [-ber p] [-drop p] [-flap-up us]
//	      [-flap-down us] [-workloads stream,kvstore,graph500] [-failover]
//	      [-pool] [-serve addr] [-cpuprofile file] [-memprofile file]
//	      [-mutexprofile file] [-blockprofile file]
//
// Trials fan out across -j worker goroutines (default: one per CPU); each
// trial owns its testbed and fault schedule, so results are identical at
// any -j.
//
// With -serve, a live run monitor answers /metrics, /healthz, /status,
// /stream, and /events while the campaigns execute, and a failed
// invariant audit dumps the flight recorder (the last datapath events
// before the violation) to stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"thymesim/internal/core"
	"thymesim/internal/metricsplane"
	"thymesim/internal/metricsplane/monitor"
	"thymesim/internal/prof"
	"thymesim/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaos: ")
	def := core.DefaultChaosFaults()
	var (
		seed       = flag.Uint64("seed", 1, "fault-schedule seed")
		ber        = flag.Float64("ber", def.BER, "per-beat bit error rate (0 disables)")
		drop       = flag.Float64("drop", def.DropProb, "per-beat drop probability (0 disables)")
		flapUp     = flag.Float64("flap-up", def.FlapMeanUp.Micros(), "mean link up-phase (us)")
		flapDown   = flag.Float64("flap-down", def.FlapMeanDown.Micros(), "mean link down-phase (us, 0 disables flapping)")
		workloads  = flag.String("workloads", strings.Join(core.ChaosWorkloads, ","), "comma-separated workloads")
		jobs       = flag.Int("j", 0, "concurrent chaos trials (0 = one per CPU); results are identical at any -j")
		shards     = flag.Int("shards", 0, "event-kernel shards per pool run (0/1 = single kernel); results are identical at any -shards")
		failover   = flag.Bool("failover", false, "also run the dead-link degraded-failover scenario")
		schedule   = flag.Bool("schedule", false, "also run the scheduled lender-fault campaign (crash/wipe/burst/brownout) with the deadline+breaker stack")
		poolChaos  = flag.Bool("pool", false, "also run the pool chaos campaign (N×M region churn + lender crash/restore)")
		serveAddr  = flag.String("serve", "", "serve the live run monitor (/metrics, /healthz, /status) on this address while campaigns run")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the chaos trials to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile (taken after the trials) to this file")
		mtxProfile = flag.String("mutexprofile", "", "write a mutex-contention profile of the trials to this file")
		blkProfile = flag.String("blockprofile", "", "write a goroutine-blocking profile (barrier stalls under -shards) to this file")
	)
	flag.Parse()

	opts := core.Default()
	opts.Seed = *seed
	opts.Workers = *jobs
	opts.Shards = *shards
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}
	if *serveAddr != "" {
		plane := metricsplane.New()
		plane.SetSLO(metricsplane.DefaultSLOConfig())
		plane.SetRun(fmt.Sprintf("chaos -seed %d", *seed))
		opts.Metrics = plane
		srv, err := monitor.Serve(*serveAddr, plane)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics: serving /metrics /healthz /status on http://%s\n", srv.Addr())
	}
	cfg := core.DefaultChaosConfig()
	cfg.Seed = *seed
	cfg.Faults.BER = *ber
	cfg.Faults.DropProb = *drop
	cfg.Faults.FlapMeanUp = sim.Duration(*flapUp * float64(sim.Microsecond))
	cfg.Faults.FlapMeanDown = sim.Duration(*flapDown * float64(sim.Microsecond))
	cfg.Workloads = strings.Split(*workloads, ",")
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	stopCPU, err := prof.Start(*cpuProfile)
	if err != nil {
		log.Fatal(err)
	}
	stopMutex, err := prof.StartMutex(*mtxProfile)
	if err != nil {
		log.Fatal(err)
	}
	stopBlock, err := prof.StartBlock(*blkProfile)
	if err != nil {
		log.Fatal(err)
	}
	rep := opts.RunChaos(cfg)
	var failoverResult *core.DegradedFailover
	if *failover {
		failoverResult = opts.RunDegradedFailover()
	}
	var scheduleResult *core.ChaosScheduleReport
	if *schedule {
		scfg := core.DefaultChaosScheduleConfig()
		scfg.Seed = *seed
		var err error
		scheduleResult, err = opts.RunChaosSchedule(scfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	var poolResult *core.PoolChaos
	if *poolChaos {
		pcfg := core.DefaultPoolChaosConfig()
		pcfg.Seed = *seed
		poolResult = opts.RunPoolChaos(pcfg)
	}
	stopCPU()
	if err := stopMutex(); err != nil {
		log.Fatal(err)
	}
	if err := stopBlock(); err != nil {
		log.Fatal(err)
	}
	if err := prof.WriteHeap(*memProfile); err != nil {
		log.Fatal(err)
	}

	if err := rep.Table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := rep.Counters.Table("fault/recovery counters").Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if failoverResult != nil {
		fmt.Println()
		r := failoverResult
		fmt.Printf("degraded failover: completed=%t dead_declared=%t degraded=%t pages=%d local_accesses=%d poisoned=%d elapsed=%.4g us\n",
			r.Completed, r.DeadDeclared, r.Degraded, r.DegradedPages, r.LocalAccesses, r.Poisoned, r.ElapsedUs)
		if !r.Completed || !r.DeadDeclared || !r.Degraded {
			log.Fatal("degraded failover did not complete cleanly")
		}
	}

	if scheduleResult != nil {
		fmt.Println()
		if err := scheduleResult.Events.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := scheduleResult.Table.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		r := scheduleResult.Result
		fmt.Printf("scheduled campaign: trips=%d reopens=%d closes=%d trip=%.4g us recovery=%.4g us final=%s\n",
			r.Trips, r.Reopens, r.Closes, r.TripUs, r.RecoveryUs, r.FinalBreaker)
		if !scheduleResult.OK() {
			for _, v := range r.Violations {
				log.Printf("schedule: VIOLATION: %s", v)
			}
			log.Fatal("scheduled campaign failed its audit")
		}
	}

	if poolResult != nil {
		fmt.Println()
		r := poolResult
		fmt.Printf("pool chaos: seed=%d rounds=%d attaches=%d (rejected=%d) detaches=%d grows=%d crashes=%d restores=%d\n",
			r.Seed, r.Rounds, r.Attaches, r.AttachRejected, r.Detaches, r.Grows, r.Crashes, r.Restores)
		fmt.Printf("pool chaos: issued=%d completed=%d poisoned=%d expired=%d translation_faults=%d\n",
			r.Issued, r.Completed, r.Poisoned, r.Expired, r.TranslationFaults)
		if !r.OK() {
			for _, v := range r.Violations {
				log.Printf("pool: VIOLATION: %s", v)
			}
			log.Fatal("pool chaos campaign failed its audit")
		}
	}

	if !rep.OK() {
		for _, r := range rep.Results {
			for _, v := range r.Violations {
				log.Printf("%s: VIOLATION: %s", r.Workload, v)
			}
		}
		log.Fatal("invariant violations detected")
	}
	fmt.Println("\nall workloads completed; all invariants held")
}
