// Command tfsim runs a single workload on the simulated ThymesisFlow
// testbed under a chosen delay-injection PERIOD and memory placement, and
// prints its measurements — the equivalent of one experimental run on the
// prototype.
//
// Usage:
//
//	tfsim -workload stream|graph500|redis [-period N] [-placement remote|local]
//	      [-elements N] [-scale N] [-requests N] [-seed N]
//	      [-trace FILE] [-trace-sample N] [-telemetry FILE]
//	      [-serve ADDR] [-metrics-ndjson FILE]
//
// With -serve, a live run monitor answers /metrics (Prometheus text),
// /healthz, /status, /stream, and /events while the workload runs.
// -metrics-ndjson streams windowed metric deltas (one JSON object per
// changed series per 10 µs simulated-time window) and applies to the
// stream/remote telemetry mode, which owns the simulated clock.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"thymesim/internal/core"
	"thymesim/internal/metricsplane"
	"thymesim/internal/metricsplane/monitor"
	"thymesim/internal/obs"
	"thymesim/internal/sim"
	"thymesim/internal/telemetry"
	"thymesim/internal/workloads/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tfsim: ")
	var (
		workload  = flag.String("workload", "stream", "stream | graph500 | redis")
		period    = flag.Int64("period", 1, "delay injector PERIOD in FPGA cycles (1 = vanilla)")
		placement = flag.String("placement", "remote", "remote | local")
		elements  = flag.Int("elements", 0, "STREAM array elements (0 = default)")
		scale     = flag.Int("scale", 0, "Graph500 scale (0 = default)")
		requests  = flag.Int("requests", 0, "Memtier requests per client (0 = default)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		telem     = flag.String("telemetry", "", "CSV file for time-series telemetry (stream/remote only)")
		trace     = flag.String("trace", "", "Chrome trace-event JSON file for span tracing (remote only)")
		traceSamp = flag.Int("trace-sample", 1, "trace every Nth line fill (bounds tracer memory)")
		serveAddr = flag.String("serve", "", "serve the live run monitor (/metrics, /healthz, /status) on this address while the workload runs")
		metricsND = flag.String("metrics-ndjson", "", "stream windowed metric deltas as NDJSON to this file (stream/remote telemetry mode only)")
	)
	flag.Parse()

	opts := core.Default()
	opts.Seed = *seed
	if *elements > 0 {
		opts.StreamElements = *elements
	}
	if *scale > 0 {
		opts.GraphScale = *scale
	}
	if *requests > 0 {
		opts.KVRequests = *requests
	}
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}
	if *period < 1 {
		log.Fatal("period must be >= 1")
	}
	remote := *placement == "remote"
	if !remote && *placement != "local" {
		log.Fatalf("unknown placement %q", *placement)
	}
	if !remote && *period != 1 {
		log.Fatal("delay injection applies to remote placement only")
	}
	if *trace != "" && !remote {
		log.Fatal("span tracing requires remote placement")
	}
	tcfg := obs.Config{Sample: *traceSamp}

	if *serveAddr != "" || *metricsND != "" {
		plane := metricsplane.New()
		plane.SetSLO(metricsplane.DefaultSLOConfig())
		plane.SetRun(fmt.Sprintf("tfsim -workload %s -placement %s -period %d", *workload, *placement, *period))
		opts.Metrics = plane
	}
	if *serveAddr != "" {
		srv, err := monitor.Serve(*serveAddr, opts.Metrics)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics: serving /metrics /healthz /status on http://%s\n", srv.Addr())
	}
	if *metricsND != "" && (*workload != "stream" || !remote || *telem == "") {
		log.Fatal("-metrics-ndjson needs the stream/remote telemetry mode (-workload stream -placement remote -telemetry FILE)")
	}

	switch *workload {
	case "stream":
		if *telem != "" {
			if !remote {
				log.Fatal("telemetry requires remote placement")
			}
			runStreamTelemetry(opts, *period, *telem, *trace, *metricsND, tcfg)
			return
		}
		var m core.StreamMeasurement
		var tr *obs.Tracer
		switch {
		case !remote:
			m = opts.StreamLocal()
		case *trace != "":
			m, tr = opts.StreamRemoteTraced(*period, tcfg)
		default:
			m = opts.StreamRemote(*period)
		}
		fmt.Printf("STREAM %s PERIOD=%d\n", *placement, *period)
		for _, r := range m.PerKernel {
			fmt.Printf("  %-6s %8.3f GB/s  fill latency %8.3f us\n",
				r.Kernel, r.BandwidthBps/1e9, r.AvgFillLatencyUs)
		}
		fmt.Printf("  total  %8.3f GB/s  mean latency %8.3f us  BDP %.2f kB\n",
			m.BandwidthBps/1e9, m.FillLatUs, m.BandwidthBps*m.FillLatUs/1e9)
		finishTrace(tr, *trace)
	case "graph500":
		var m core.GraphMeasurement
		var tr *obs.Tracer
		switch {
		case !remote:
			m = opts.GraphLocal()
		case *trace != "":
			m, tr = opts.GraphRemoteTraced(*period, tcfg)
		default:
			m = opts.GraphRemote(*period)
		}
		fmt.Printf("Graph500 scale=%d %s PERIOD=%d\n", opts.GraphScale, *placement, *period)
		fmt.Printf("  BFS  %12v  %10.0f TEPS\n", m.BFSTime, m.BFSTeps)
		fmt.Printf("  SSSP %12v  %10.0f TEPS\n", m.SSSPTime, m.SSSPTeps)
		finishTrace(tr, *trace)
	case "redis":
		var m core.KVMeasurement
		var tr *obs.Tracer
		switch {
		case !remote:
			m = opts.KVLocal()
		case *trace != "":
			m, tr = opts.KVRemoteTraced(*period, tcfg)
		default:
			m = opts.KVRemote(*period)
		}
		fmt.Printf("Redis+Memtier %s PERIOD=%d\n", *placement, *period)
		fmt.Printf("  throughput %10.0f req/s\n", m.Throughput)
		fmt.Printf("  latency    mean %.1f us  p99 %.1f us\n", m.MeanLatUs, m.P99LatUs)
		finishTrace(tr, *trace)
	default:
		log.Fatalf("unknown workload %q", *workload)
	}
}

// finishTrace prints the traced run's per-stage breakdown, exports the
// Chrome trace, and re-parses the file to prove it is valid JSON. No-op
// when tracing was off.
func finishTrace(tr *obs.Tracer, path string) {
	if tr == nil || path == "" {
		return
	}
	if err := tr.BreakdownTable("per-stage latency breakdown").Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		log.Fatalf("trace %s: invalid JSON: %v", path, err)
	}
	fmt.Printf("trace: %d spans (%d retained) -> %s (%d events, valid JSON)\n",
		tr.Finished(), tr.Retained(), path, len(parsed.TraceEvents))
}

// runStreamTelemetry runs STREAM on the remote testbed while sampling the
// datapath's observables every 10us of simulated time, then writes the
// series as CSV. With tracePath set, span tracing runs alongside and its
// per-stage running means join the sampled probes. With ndPath set (and
// the metrics plane on), windowed metric deltas stream there as NDJSON on
// the same 10us simulated-time cadence.
func runStreamTelemetry(opts core.Options, period int64, path, tracePath, ndPath string, tcfg obs.Config) {
	tb := opts.Testbed(period)
	var tr *obs.Tracer
	if tracePath != "" {
		tr = tb.EnableTracing(tcfg)
	}
	var ws *metricsplane.WindowStream
	if ndPath != "" {
		nf, err := os.Create(ndPath)
		if err != nil {
			log.Fatal(err)
		}
		defer nf.Close()
		ws = opts.Metrics.StreamWindows(tb.K, 10*sim.Microsecond, nf)
		defer func() {
			ws.Stop()
			fmt.Printf("metrics: windowed NDJSON stream -> %s\n", ndPath)
		}()
	}
	h := tb.NewRemoteHierarchy()
	cfg := stream.DefaultConfig(tb.RemoteAddr(0))
	cfg.Elements = opts.StreamElements

	sampler := telemetry.NewSampler(tb.K, 10*sim.Microsecond)
	tr.RegisterProbes(sampler)
	sampler.Register("injector_backlog", func() float64 {
		return float64(tb.BorrowerNIC.InjectorBacklog())
	})
	sampler.Register("mshr_in_use", func() float64 {
		return float64(h.OutstandingFills())
	})
	sampler.Register("link_utilization", func() float64 {
		return tb.Link.AtoB.Utilization()
	})
	sampler.Register("lender_dram_utilization", func() float64 {
		return tb.LenderMem.Utilization()
	})
	sampler.Start()

	r := stream.New(tb.K, h, cfg)
	var results []stream.Result
	tb.K.At(0, func() {
		r.Run(func(res []stream.Result) {
			results = res
			sampler.Stop()
			tb.K.Stop()
		})
	})
	tb.K.Run()

	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := sampler.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	bw, lat := stream.Summary(results)
	fmt.Printf("STREAM remote PERIOD=%d: %.3f GB/s, fill latency %.2f us\n", period, bw/1e9, lat)
	fmt.Printf("telemetry: %d samples x %d probes -> %s\n", sampler.Samples(), len(sampler.Names()), path)
	finishTrace(tr, tracePath)
}
