// Command memtrace records workload memory traces from the simulated
// testbed, inspects them, and replays them against arbitrary delay
// configurations — methodology for comparing memory-system settings on
// bit-identical access streams.
//
// Usage:
//
//	memtrace record -workload stream|graph500-bfs [-out trace.tsim] [-scale N]
//	memtrace stat   -in trace.tsim
//	memtrace replay -in trace.tsim [-period N] [-window N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"thymesim/internal/core"
	"thymesim/internal/memport"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
	"thymesim/internal/trace"
	"thymesim/internal/workloads/graph500"
	"thymesim/internal/workloads/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("memtrace: ")
	if len(os.Args) < 2 {
		log.Fatal("subcommand required: record | stat | replay")
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "stat":
		stat(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "stream", "stream | graph500-bfs")
	out := fs.String("out", "trace.tsim", "output file")
	scale := fs.Int("scale", 10, "Graph500 scale")
	elements := fs.Int("elements", 1<<15, "STREAM elements")
	fs.Parse(args)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.Default()
	switch *workload {
	case "stream":
		// Capture the raw access stream (single phase: STREAM's intra-
		// kernel accesses are independent; replay bounds them with the
		// window).
		tb := opts.Testbed(1)
		h := tb.NewRemoteHierarchy()
		h.OnAccess(func(addr uint64, size int, write bool) {
			if err := w.Op(memport.Op{Addr: addr, Size: int32(size), Write: write}); err != nil {
				log.Fatal(err)
			}
		})
		cfg := stream.DefaultConfig(tb.RemoteAddr(0))
		cfg.Elements = *elements
		r := stream.New(tb.K, h, cfg)
		tb.K.At(0, func() { r.Run(func([]stream.Result) {}) })
		tb.K.Run()
	case "graph500-bfs":
		// Capture the level-structured BFS trace with barriers between
		// levels, preserving the dependency structure exactly.
		gCfg := graph500.DefaultConfig(0x1000_0000_0000)
		gCfg.Scale = *scale
		rng := sim.NewRand(opts.Seed)
		edges := graph500.GenerateKronecker(gCfg.Scale, gCfg.EdgeFactor, rng)
		g := graph500.BuildCSR(edges)
		g.Place(gCfg.BaseAddr)
		root := graph500.PickRoots(g, 1, rng)[0]
		res := graph500.BFS(g, root)
		src := graph500.NewBFSTrace(g, res, graph500.DefaultCostModel())
		for i := 0; i < src.NumPhases(); i++ {
			for _, op := range src.Phase(i) {
				if err := w.Op(op); err != nil {
					log.Fatal(err)
				}
			}
			if i+1 < src.NumPhases() {
				if err := w.Barrier(); err != nil {
					log.Fatal(err)
				}
			}
		}
	default:
		log.Fatalf("unknown workload %q", *workload)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("recorded %d ops -> %s (%d bytes, %.2f B/op)\n",
		w.Ops(), *out, st.Size(), float64(st.Size())/float64(w.Ops()))
}

func loadFile(path string) [][]memport.Op {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	phases, err := trace.Load(f)
	if err != nil {
		log.Fatal(err)
	}
	return phases
}

func stat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("in", "trace.tsim", "input file")
	fs.Parse(args)
	phases := loadFile(*in)
	var ops, writes int
	var bytes uint64
	lines := map[uint64]bool{}
	for _, ph := range phases {
		for _, op := range ph {
			ops++
			if op.Write {
				writes++
			}
			bytes += uint64(op.Size)
			for _, l := range linesOf(op) {
				lines[l] = true
			}
		}
	}
	fmt.Printf("%s: %d phases, %d ops (%d writes), %d bytes touched, %d distinct lines (%.1f MiB footprint)\n",
		*in, len(phases), ops, writes, bytes, len(lines), float64(len(lines))*128/(1<<20))
}

func linesOf(op memport.Op) []uint64 {
	var out []uint64
	first := ocapi.LineAlign(op.Addr)
	for a := first; a < op.Addr+uint64(op.Size); a += ocapi.CacheLineSize {
		out = append(out, a)
	}
	return out
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "trace.tsim", "input file")
	period := fs.Int64("period", 1, "delay injector PERIOD")
	window := fs.Int("window", 64, "replay issue window")
	fs.Parse(args)

	phases := loadFile(*in)
	opts := core.Default()
	tb := opts.Testbed(*period)
	h := tb.NewRemoteHierarchy()
	src := &trace.Source{Phases: phases}
	var elapsed sim.Duration
	tb.K.At(0, func() {
		memport.Replay(tb.K, h, src, *window, func(d sim.Duration) { elapsed = d })
	})
	tb.K.Run()
	st := h.Stats()
	fmt.Printf("replayed %d phases at PERIOD=%d: %v simulated, %d fills, %.3f GB/s, fill latency %.2f us\n",
		len(phases), *period, elapsed, st.LineFills,
		sim.PerSecond(float64(st.BytesMoved), elapsed)/1e9, h.FillLatency().Mean())
}
