// Trace replay: close the loop between the beyond-rack fabric and the
// paper's injector. Phase 1 runs real incast congestion on a switched
// 4-node deployment and captures the per-fill remote-memory latencies.
// Phase 2 converts them into inter-release gaps and replays them on the
// point-to-point testbed through inject.TraceGate — emulating the measured
// datacenter conditions exactly the way the paper's framework injects
// fixed PERIODs, but with real temporal structure.
package main

import (
	"fmt"
	"log"

	"thymesim/internal/cluster"
	"thymesim/internal/fabric"
	"thymesim/internal/inject"
	"thymesim/internal/memport"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
	"thymesim/internal/workloads/stream"
)

// captureCongestion returns one borrower's fill-completion gaps (the rate
// at which the congested fabric actually delivered its lines) and the mean
// fill latency, while three borrowers incast on a single lender.
func captureCongestion() (gaps []sim.Duration, meanLat sim.Duration) {
	d := fabric.NewDatacenter(fabric.DefaultDCConfig(4))
	const lender = 3
	var latSum sim.Duration
	var fills int
	var lastFill sim.Time
	started := false
	type flow struct {
		h    *memport.Hierarchy
		base uint64
	}
	var flows []flow
	for b := 0; b < 3; b++ {
		base, err := d.Borrow(b, lender, 1<<30)
		if err != nil {
			log.Fatal(err)
		}
		h := d.NewHierarchy(b, lender)
		if b == 0 {
			h.OnFill(func(lat sim.Duration) {
				latSum += lat
				fills++
				now := d.K.Now()
				if started {
					gaps = append(gaps, now.Sub(lastFill))
				}
				started = true
				lastFill = now
			})
		}
		flows = append(flows, flow{h, base})
	}
	const lines = 2500
	d.K.At(0, func() {
		for _, f := range flows {
			for i := 0; i < lines; i++ {
				f.h.Access(f.base+uint64(i)*ocapi.CacheLineSize, 8, false, nil)
			}
		}
	})
	d.K.Run()
	return gaps, latSum / sim.Duration(fills)
}

func runStreamWithGate(gate interface {
	Next(sim.Time) sim.Time
	Commit(sim.Time)
}) (bwGBs, meanUs, p99Us float64) {
	cfg := cluster.DefaultConfig(0)
	cfg.Gate = gate
	cfg.LLC.SizeBytes = 64 << 10
	cfg.LLC.Ways = 4
	tb := cluster.NewTestbed(cfg)
	h := tb.NewRemoteHierarchy()
	sCfg := stream.DefaultConfig(tb.RemoteAddr(0))
	sCfg.Elements = 1 << 15
	r := stream.New(tb.K, h, sCfg)
	var out []stream.Result
	tb.K.At(0, func() { r.Run(func(res []stream.Result) { out = res }) })
	tb.K.Run()
	bw, lat := stream.Summary(out)
	return bw / 1e9, lat, h.FillLatency().Quantile(0.99)
}

func main() {
	log.SetFlags(0)
	fmt.Println("Phase 1: capturing remote-fill latencies under 3-borrower incast...")
	gaps, meanLat := captureCongestion()
	fmt.Printf("  captured %d completion gaps, mean fill latency %v\n", len(gaps), meanLat)

	fmt.Println("\nPhase 2: replaying on the point-to-point testbed")
	bw, m, p99 := runStreamWithGate(inject.NewTraceGate(gaps, inject.DefaultFPGACycle))
	fmt.Printf("  trace-replay injector: STREAM %.3f GB/s, fill mean %.1f us, p99 %.1f us\n", bw, m, p99)

	// Compare against a fixed-PERIOD injector with the same mean gap.
	var gsum sim.Duration
	for _, g := range gaps {
		gsum += g
	}
	meanGap := gsum / sim.Duration(len(gaps))
	period := int64(meanGap / inject.DefaultFPGACycle)
	if period < 1 {
		period = 1
	}
	bwP, mP, p99P := runStreamWithGate(inject.NewPeriodGate(period, inject.DefaultFPGACycle))
	fmt.Printf("  fixed PERIOD=%-5d      : STREAM %.3f GB/s, fill mean %.1f us, p99 %.1f us\n", period, bwP, mP, p99P)
	fmt.Println("\nSame mean injected delay; the trace preserves the congestion's temporal")
	fmt.Println("structure (its tail), which the paper's fixed-PERIOD injector cannot (§V).")
}
