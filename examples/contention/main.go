// Contention example: the paper's third insight. Contention at the
// borrower (MCBN) divides bandwidth equally among instances, while
// contention at the lender (MCLN) is nearly invisible to the borrower —
// the network, not the lender's memory bus, is the bottleneck. A busy
// lender and an idle lender are therefore "equally viable candidates" for
// reservation, which this example demonstrates by comparing a
// contention-aware allocation policy against first-fit.
package main

import (
	"fmt"
	"log"

	"thymesim/internal/control"
	"thymesim/internal/core"
)

func main() {
	log.SetFlags(0)
	opts := core.Default()

	fmt.Println("MCBN: N STREAM instances on the borrower (Fig. 6)")
	mcbn := opts.RunMCBN([]int{1, 2, 4, 8})
	for i, n := range mcbn.Counts {
		fmt.Printf("  %d instance(s): %7.3f GB/s per instance\n", n, mcbn.BorrowerBps[i]/1e9)
	}

	fmt.Println("\nMCLN: 1 borrower STREAM vs N lender-local STREAMs (Fig. 7)")
	mcln := opts.RunMCLN([]int{0, 1, 2, 4})
	for i, n := range mcln.Counts {
		fmt.Printf("  %d lender app(s): %7.3f GB/s at the borrower\n", n, mcln.BorrowerBps[i]/1e9)
	}
	drop := 1 - mcln.BorrowerBps[len(mcln.BorrowerBps)-1]/mcln.BorrowerBps[0]
	fmt.Printf("  borrower bandwidth drop with a busy lender: %.1f%%\n", 100*drop)

	// Allocation consequence: with lender-side contention this cheap, the
	// contention-aware policy's preference for idle lenders buys nothing
	// for the borrower — both placements are viable.
	plane := control.NewPlane()
	plane.AddNode(0, 512<<30)
	busy := plane.AddNode(1, 512<<30)
	busy.RunningApps = 8      // heavily loaded lender
	plane.AddNode(2, 512<<30) // idle lender

	ff, err := plane.Reserve(0, 64<<30, control.ClassLatencyTolerant, control.FirstFit{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst-fit picked lender %d (busy: %d apps)\n", ff.Lender, plane.Node(ff.Lender).RunningApps)
	if err := plane.Release(ff.ID); err != nil {
		log.Fatal(err)
	}
	ca, err := plane.Reserve(0, 64<<30, control.ClassLatencyTolerant, control.ContentionAware{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contention-aware picked lender %d (busy: %d apps)\n", ca.Lender, plane.Node(ca.Lender).RunningApps)
	fmt.Printf("measured borrower-side cost of the busy choice: %.1f%% — both are viable\n", 100*drop)

	// The §V caveat: against a CPU-less memory pool the bottleneck moves
	// into the pool and lender-side contention is suddenly very visible.
	fmt.Println("\nPooling ablation (§V): same MCLN against a 25 GB/s pool device")
	pool := opts.RunMCLNPool([]int{0, 1, 2, 4}, 25e9)
	for i, n := range pool.Counts {
		fmt.Printf("  %d pool-local app(s): %7.3f GB/s at the borrower\n", n, pool.BorrowerBps[i]/1e9)
	}
}
