// Quickstart: build the two-node ThymesisFlow-like testbed, attach remote
// memory through the control plane, and measure STREAM on disaggregated
// memory with and without injected delay.
package main

import (
	"fmt"
	"log"

	"thymesim/internal/cluster"
	"thymesim/internal/control"
	"thymesim/internal/workloads/stream"
)

func main() {
	log.SetFlags(0)
	for _, period := range []int64{1, 50, 1000} {
		// 1. Compose the testbed: borrower + lender, 100 Gb/s link, delay
		// injector at the borrower NIC egress with the given PERIOD.
		cfg := cluster.DefaultConfig(period)
		cfg.LLC.SizeBytes = 64 << 10 // scaled-down LLC so the demo arrays stream
		cfg.LLC.Ways = 4
		tb := cluster.NewTestbed(cfg)

		// 2. Hot-plug the remote memory (libthymesisflow's job): a
		// sequence of config transactions with a detection deadline.
		var attach control.AttachResult
		tb.K.At(0, func() {
			control.Attach(tb, control.DefaultAttachConfig(), func(r control.AttachResult) { attach = r })
		})
		tb.K.Run()
		if !attach.OK {
			fmt.Printf("PERIOD=%-5d attach FAILED: %s\n", period, attach.Reason)
			continue
		}

		// 3. Run STREAM against the hot-plugged window.
		h := tb.NewRemoteHierarchy()
		scfg := stream.DefaultConfig(tb.RemoteAddr(0))
		scfg.Elements = 1 << 15
		runner := stream.New(tb.K, h, scfg)
		var results []stream.Result
		tb.K.At(tb.K.Now(), func() { runner.Run(func(r []stream.Result) { results = r }) })
		tb.K.Run()

		bw, lat := stream.Summary(results)
		fmt.Printf("PERIOD=%-5d attach %v in %v | STREAM %.3f GB/s, fill latency %.2f us, BDP %.1f kB\n",
			period, attach.OK, attach.Elapsed, bw/1e9, lat, bw*lat/1e9)
	}
}
