// Beyond-rack example: the scenario the paper's delay injector emulates,
// built for real. A switched fabric replaces the point-to-point cable;
// multiple borrowers reach one lender through a shared switch port, and
// congestion manifests as exactly the elevated, variable remote-memory
// latency that §IV characterizes synthetically.
package main

import (
	"fmt"
	"log"

	"thymesim/internal/fabric"
	"thymesim/internal/memport"
	"thymesim/internal/ocapi"
	"thymesim/internal/sim"
)

// measure runs `borrowers` concurrent line-read streams against lender
// node (the last node) and reports per-borrower bandwidth and mean fill
// latency.
func measure(borrowers int) (bwBps float64, meanLatUs float64) {
	const nodes = 5
	lender := nodes - 1
	d := fabric.NewDatacenter(fabric.DefaultDCConfig(nodes))
	type flow struct {
		h    *memport.Hierarchy
		base uint64
	}
	var flows []flow
	for b := 0; b < borrowers; b++ {
		base, err := d.Borrow(b, lender, 1<<30)
		if err != nil {
			log.Fatal(err)
		}
		flows = append(flows, flow{d.NewHierarchy(b, lender), base})
	}
	const lines = 3000
	d.K.At(0, func() {
		for _, f := range flows {
			for i := 0; i < lines; i++ {
				f.h.Access(f.base+uint64(i)*ocapi.CacheLineSize, 8, false, nil)
			}
		}
	})
	end := d.K.Run()
	perBorrower := float64(lines*ocapi.CacheLineSize) / sim.Time(end).Seconds()
	// Average the per-hierarchy fill latencies.
	var lat float64
	for _, f := range flows {
		lat += f.h.FillLatency().Mean()
	}
	return perBorrower, lat / float64(len(flows))
}

func main() {
	log.SetFlags(0)
	fmt.Println("Incast at one lender across a switched fabric (5 nodes, 100 Gb/s ports):")
	fmt.Printf("%-10s %18s %18s\n", "borrowers", "per-borrower GB/s", "fill latency (us)")
	base := 0.0
	for _, n := range []int{1, 2, 3, 4} {
		bw, lat := measure(n)
		if n == 1 {
			base = lat
		}
		fmt.Printf("%-10d %18.3f %18.2f\n", n, bw/1e9, lat)
	}
	_, lat4 := measure(4)
	fmt.Printf("\ncongestion raised remote-memory latency %.1fx without any injector —\n", lat4/base)
	fmt.Println("the regime the paper's PERIOD sweeps emulate on the point-to-point prototype.")
}
