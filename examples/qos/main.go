// QoS example: the paper's second insight operationalized. Applications
// differ by orders of magnitude in sensitivity to remote-memory latency
// (Fig. 5), so resource allocation must be QoS-aware: under elevated
// network delay, latency-sensitive workloads (Graph500) should be kept on
// (or migrated to) local memory, while latency-tolerant services (Redis)
// can stay on disaggregated memory almost for free.
//
// The example measures both workloads in both placements under an elevated
// delay, then shows what a QoS-aware placement decision saves.
package main

import (
	"fmt"
	"log"

	"thymesim/internal/control"
	"thymesim/internal/core"
)

func main() {
	log.SetFlags(0)
	opts := core.Default()
	const period = 250 // elevated network delay: 1us per transaction

	fmt.Println("Measuring placements under elevated network delay (PERIOD=250)...")
	redisLocal := opts.KVLocal()
	redisRemote := opts.KVRemote(period)
	graphLocal := opts.GraphLocal()
	graphRemote := opts.GraphRemote(period)

	redisPenalty := redisLocal.Throughput / redisRemote.Throughput
	graphPenalty := float64(graphRemote.BFSTime) / float64(graphLocal.BFSTime)

	fmt.Printf("\n%-22s %15s %15s %10s\n", "workload", "local", "remote@delay", "penalty")
	fmt.Printf("%-22s %12.0f/s %12.0f/s %9.2fx\n",
		"redis (throughput)", redisLocal.Throughput, redisRemote.Throughput, redisPenalty)
	fmt.Printf("%-22s %15v %15v %9.1fx\n",
		"graph500 BFS (JCT)", graphLocal.BFSTime, graphRemote.BFSTime, graphPenalty)

	// Classify by measured sensitivity, as a QoS-aware control plane
	// would.
	classify := func(penalty float64) control.QoSClass {
		if penalty > 2 {
			return control.ClassLatencySensitive
		}
		return control.ClassLatencyTolerant
	}
	redisClass := classify(redisPenalty)
	graphClass := classify(graphPenalty)
	fmt.Printf("\nQoS classification: redis=%v, graph500=%v\n", redisClass, graphClass)

	// Drive placement through the control plane: the sensitive workload
	// gets local memory (no reservation); the tolerant one borrows.
	plane := control.NewPlane()
	plane.AddNode(0, 512<<30) // app node
	plane.AddNode(1, 512<<30) // potential lender
	if graphClass == control.ClassLatencySensitive {
		fmt.Println("placement: graph500 -> local memory (QoS: protect the sensitive job)")
	}
	if redisClass == control.ClassLatencyTolerant {
		r, err := plane.Reserve(0, 64<<30, redisClass, control.FirstFit{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("placement: redis -> %d GiB disaggregated from node %d (penalty only %.2fx)\n",
			r.Size>>30, r.Lender, redisPenalty)
	}

	naive := float64(graphRemote.BFSTime)
	qos := float64(graphLocal.BFSTime)
	fmt.Printf("\nQoS-aware placement cuts the sensitive job's completion time %.1fx (%v -> %v)\n",
		naive/qos, graphRemote.BFSTime, graphLocal.BFSTime)
}
